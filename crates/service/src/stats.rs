//! Service observability: job counters and per-algorithm latency
//! histograms.
//!
//! Latencies land in log2-spaced microsecond buckets, so a histogram is
//! a fixed 48-word array — cheap enough to update on every job with a
//! single lock, precise enough for p50/p99 at the resolution that
//! matters (each bucket spans 2×).  Quantiles are read out by walking
//! the cumulative counts and interpolating inside the hit bucket.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Number of log2 buckets: covers 1 µs .. ~2^47 µs (≈ 4.5 years).
const BUCKETS: usize = 48;

/// A log2-bucketed latency histogram over microseconds.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

fn bucket_of(us: u64) -> usize {
    (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

impl LatencyHistogram {
    /// Record one observation in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1000.0
        }
    }

    /// Maximum observed latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1000.0
    }

    /// Approximate quantile (`0.0 ..= 1.0`) in milliseconds: the rank's
    /// bucket, linearly interpolated across the bucket's span.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = 1u64 << b;
                let hi = lo << 1;
                let within = (rank - seen) as f64 / c as f64;
                let us = lo as f64 + within * (hi - lo) as f64;
                return us / 1000.0;
            }
            seen += c;
        }
        self.max_ms()
    }
}

/// One labelled latency series (per algorithm/engine pair).
#[derive(Clone, Debug)]
pub struct LatencySummary {
    /// Series label, e.g. `cc/bsp`.
    pub label: String,
    /// Completed jobs in the series.
    pub completed: u64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Worst latency (ms).
    pub max_ms: f64,
}

/// Keyed latency histograms behind one lock (updated once per finished
/// job — not a hot path).
#[derive(Default)]
pub struct LatencyBook {
    series: Mutex<HashMap<String, LatencyHistogram>>,
}

impl LatencyBook {
    /// Record `us` microseconds under `label`.
    pub fn record(&self, label: &str, us: u64) {
        self.series
            .lock()
            .entry(label.to_string())
            .or_default()
            .record_us(us);
    }

    /// Summaries of every series, sorted by label.
    pub fn summaries(&self) -> Vec<LatencySummary> {
        let series = self.series.lock();
        let mut out: Vec<LatencySummary> = series
            .iter()
            .map(|(label, h)| LatencySummary {
                label: label.clone(),
                completed: h.count(),
                mean_ms: h.mean_ms(),
                p50_ms: h.quantile_ms(0.50),
                p99_ms: h.quantile_ms(0.99),
                max_ms: h.max_ms(),
            })
            .collect();
        out.sort_by(|a, b| a.label.cmp(&b.label));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record_us(1_000); // ~1 ms
        }
        h.record_us(1_000_000); // 1 s outlier
        assert_eq!(h.count(), 100);
        // 1000 µs lands in the [512, 1024) bucket; interpolation puts
        // the estimate inside it, within 2× of the true value.
        let p50 = h.quantile_ms(0.50);
        assert!((0.5..2.1).contains(&p50), "p50={p50}");
        let p99 = h.quantile_ms(0.99);
        assert!(p99 < 3.0, "p99={p99}"); // the outlier is beyond p99
        let p100 = h.quantile_ms(1.0);
        assert!(p100 >= 500.0, "p100={p100}");
        assert!((h.mean_ms() - (99.0 + 1000.0) / 100.0).abs() < 0.5);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn book_keeps_series_separate() {
        let book = LatencyBook::default();
        book.record("cc/bsp", 500);
        book.record("cc/bsp", 700);
        book.record("bfs/bsp", 9_000);
        let sums = book.summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].label, "bfs/bsp");
        assert_eq!(sums[0].completed, 1);
        assert_eq!(sums[1].label, "cc/bsp");
        assert_eq!(sums[1].completed, 2);
    }
}
