//! The bounded job scheduler: a fixed worker pool draining a
//! priority/FIFO queue with admission control.
//!
//! The queue has a hard capacity; a submit that finds it full is
//! rejected immediately with [`ServiceError::QueueFull`] instead of
//! buffering unbounded work (the closed-loop bench driver leans on this
//! to measure saturation).  Within the queue, higher `priority` runs
//! first and ties break FIFO by submission order.
//!
//! Cancellation and deadlines share one mechanism: each job carries an
//! atomic cancel flag, and the worker hands the BSP engine a stop hook
//! (`cancelled || past deadline`) that is polled at superstep
//! boundaries.  A cut run comes back as a [`StoredCheckpoint`] and the
//! job lands in `Cancelled`/`TimedOut`/`Interrupted` with the checkpoint
//! attached — a follow-up `resume` submission continues it exactly.
//! Worker threads wrap engine calls in `catch_unwind`, so a panicking
//! program marks its job `Failed` and the pool stays healthy.

use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use xmt_graph::Csr;

use crate::engine::{execute, ExecVerdict};
use crate::error::ServiceError;
use crate::job::{JobId, JobOutput, JobSpec, JobState, StoredCheckpoint};
use crate::stats::{LatencyBook, LatencySummary};

/// Scheduler sizing.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Queue capacity; submits beyond it are rejected (`queue_full`).
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            queue_capacity: 64,
        }
    }
}

/// What `status`/`list` report about a job.
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// Job id.
    pub id: JobId,
    /// Kernel name (`cc`/`bfs`/`pagerank`).
    pub algorithm: &'static str,
    /// Engine name (`bsp`/`graphct`).
    pub engine: &'static str,
    /// Target graph's registry name.
    pub graph: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Scheduling priority.
    pub priority: u8,
    /// Time spent queued (ms); final once running.
    pub queued_ms: u64,
    /// Time spent running (ms); final once terminal.
    pub running_ms: u64,
    /// Supersteps executed (meaningful once terminal).
    pub supersteps: u64,
    /// Whether a resumable checkpoint is attached.
    pub has_checkpoint: bool,
    /// Failure message, if the job failed.
    pub error: Option<String>,
}

struct JobRecord {
    spec: JobSpec,
    graph: Arc<Csr>,
    state: JobState,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
    supersteps: u64,
    output: Option<JobOutput>,
    error: Option<String>,
    checkpoint: Option<StoredCheckpoint>,
    resume_from: Option<StoredCheckpoint>,
}

impl JobRecord {
    fn snapshot(&self, id: JobId) -> JobSnapshot {
        let queued_ms = self
            .started
            .unwrap_or_else(Instant::now)
            .duration_since(self.submitted)
            .as_millis() as u64;
        let running_ms = match self.started {
            None => 0,
            Some(started) => self
                .finished
                .unwrap_or_else(Instant::now)
                .duration_since(started)
                .as_millis() as u64,
        };
        JobSnapshot {
            id,
            algorithm: self.spec.algorithm.name(),
            engine: self.spec.engine.name(),
            graph: self.spec.graph.clone(),
            state: self.state,
            priority: self.spec.priority,
            queued_ms,
            running_ms,
            supersteps: self.supersteps,
            has_checkpoint: self.checkpoint.is_some(),
            error: self.error.clone(),
        }
    }
}

/// Heap entry: max priority first, then FIFO by submission sequence.
struct QueueEntry {
    priority: u8,
    seq: u64,
    id: JobId,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins, then *lower*
        // sequence (earlier submit).
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Queue {
    heap: BinaryHeap<QueueEntry>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    cond: Condvar,
    jobs: Mutex<HashMap<JobId, JobRecord>>,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    latency: LatencyBook,
    config: SchedulerConfig,
}

/// Aggregate scheduler counters for the `stats` request.
#[derive(Clone, Debug)]
pub struct SchedulerStats {
    /// Configured worker count.
    pub workers: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Jobs accepted since startup.
    pub submitted: u64,
    /// Jobs rejected by admission control since startup.
    pub rejected: u64,
    /// `(state name, count)` over all tracked jobs, sorted by name.
    pub jobs_by_state: Vec<(&'static str, u64)>,
    /// Per-`algorithm/engine` completion latency series.
    pub latencies: Vec<LatencySummary>,
}

/// A fixed pool of workers over a bounded priority queue.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Start `config.workers` worker threads (at least one).
    pub fn new(config: SchedulerConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                heap: BinaryHeap::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            latency: LatencyBook::default(),
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // lint:allow(no-panic-in-lib): thread spawn fails only
                    // on OS resource exhaustion at construction time;
                    // there is no scheduler to degrade gracefully yet.
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admit a job: bounded-queue admission control, then enqueue.
    /// `resume_from` continues an interrupted run from its checkpoint.
    pub fn submit(
        &self,
        spec: JobSpec,
        graph: Arc<Csr>,
        resume_from: Option<StoredCheckpoint>,
    ) -> Result<JobId, ServiceError> {
        let id = {
            let mut queue = self.shared.queue.lock();
            if queue.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if queue.heap.len() >= self.shared.config.queue_capacity {
                // Relaxed: monotonic stats counter, read only by stats().
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::QueueFull {
                    capacity: self.shared.config.queue_capacity,
                });
            }
            // Relaxed (both): id/seq allocation needs only the RMW's
            // atomicity for uniqueness; the values travel to workers via
            // the jobs/queue locks.
            let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
            let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed); // Relaxed: as above
            let priority = spec.priority;
            // Record before the entry is visible to workers, so a pop
            // always finds its job.
            self.shared.jobs.lock().insert(
                id,
                JobRecord {
                    spec,
                    graph,
                    state: JobState::Queued,
                    cancel: Arc::new(AtomicBool::new(false)),
                    submitted: Instant::now(),
                    started: None,
                    finished: None,
                    supersteps: 0,
                    output: None,
                    error: None,
                    checkpoint: None,
                    resume_from,
                },
            );
            queue.heap.push(QueueEntry { priority, seq, id });
            // Count inside the queue lock so `stats()` (which reads the
            // depth under the same lock) never observes a queue deeper
            // than the submitted total.
            // Relaxed: the queue lock provides the ordering; the counter
            // itself is a monotonic stat.
            self.shared.submitted.fetch_add(1, Ordering::Relaxed);
            id
        };
        self.shared.cond.notify_one();
        Ok(id)
    }

    /// Request cancellation.  A queued job is cancelled on the spot; a
    /// running job gets its flag set and is cut at the next superstep
    /// boundary.  Cancelling a terminal job is a `wrong_state` error.
    pub fn cancel(&self, id: JobId) -> Result<JobState, ServiceError> {
        let mut jobs = self.shared.jobs.lock();
        let rec = jobs.get_mut(&id).ok_or(ServiceError::JobNotFound { id })?;
        match rec.state {
            JobState::Queued => {
                // The heap entry stays; workers skip non-queued jobs.
                // Relaxed: single monotonic flag, polled at superstep
                // boundaries; the jobs lock orders the state change.
                rec.cancel.store(true, Ordering::Relaxed);
                rec.state = JobState::Cancelled;
                rec.finished = Some(Instant::now());
                Ok(JobState::Cancelled)
            }
            JobState::Running => {
                // Relaxed: single monotonic flag; a slightly late read by
                // the worker only delays the cut by one superstep.
                rec.cancel.store(true, Ordering::Relaxed);
                Ok(JobState::Running)
            }
            other => Err(ServiceError::WrongState {
                id,
                state: other.name().to_string(),
            }),
        }
    }

    /// A job's current snapshot.
    pub fn status(&self, id: JobId) -> Result<JobSnapshot, ServiceError> {
        let jobs = self.shared.jobs.lock();
        jobs.get(&id)
            .map(|rec| rec.snapshot(id))
            .ok_or(ServiceError::JobNotFound { id })
    }

    /// Snapshots of every tracked job, sorted by id.
    pub fn list(&self) -> Vec<JobSnapshot> {
        let jobs = self.shared.jobs.lock();
        let mut out: Vec<JobSnapshot> = jobs.iter().map(|(id, rec)| rec.snapshot(*id)).collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// A completed job's output (cloned).  Non-terminal jobs are
    /// `wrong_state`; failed jobs surface their stored error.
    pub fn output(&self, id: JobId) -> Result<(JobOutput, u64), ServiceError> {
        let jobs = self.shared.jobs.lock();
        let rec = jobs.get(&id).ok_or(ServiceError::JobNotFound { id })?;
        match rec.state {
            JobState::Completed => Ok((
                rec.output
                    .clone()
                    // lint:allow(no-panic-in-lib): invariant — run_one
                    // sets `output` in the same locked section that sets
                    // `state = Completed`.
                    .expect("completed job has output"),
                rec.supersteps,
            )),
            JobState::Failed => Err(ServiceError::Internal {
                message: rec
                    .error
                    .clone()
                    .unwrap_or_else(|| "job failed".to_string()),
            }),
            other => Err(ServiceError::WrongState {
                id,
                state: other.name().to_string(),
            }),
        }
    }

    /// Take an interrupted job's checkpoint for resumption.  Move
    /// semantics: the checkpoint transfers to the new job, so a stale
    /// double-resume gets `no_checkpoint` instead of forking the run.
    pub fn take_checkpoint(
        &self,
        id: JobId,
    ) -> Result<(JobSpec, Arc<Csr>, StoredCheckpoint), ServiceError> {
        let mut jobs = self.shared.jobs.lock();
        let rec = jobs.get_mut(&id).ok_or(ServiceError::JobNotFound { id })?;
        match rec.state {
            JobState::Cancelled | JobState::TimedOut | JobState::Interrupted => rec
                .checkpoint
                .take()
                .map(|cp| (rec.spec.clone(), Arc::clone(&rec.graph), cp))
                .ok_or(ServiceError::NoCheckpoint { id }),
            other => Err(ServiceError::WrongState {
                id,
                state: other.name().to_string(),
            }),
        }
    }

    /// Aggregate counters and latency summaries.
    pub fn stats(&self) -> SchedulerStats {
        let queue_depth = self.shared.queue.lock().heap.len();
        let mut by_state: HashMap<&'static str, u64> = HashMap::new();
        {
            let jobs = self.shared.jobs.lock();
            for rec in jobs.values() {
                *by_state.entry(rec.state.name()).or_insert(0) += 1;
            }
        }
        let mut jobs_by_state: Vec<(&'static str, u64)> = by_state.into_iter().collect();
        jobs_by_state.sort_by_key(|(name, _)| *name);
        SchedulerStats {
            workers: self.shared.config.workers.max(1),
            queue_capacity: self.shared.config.queue_capacity,
            queue_depth,
            submitted: self.shared.submitted.load(Ordering::Relaxed), // Relaxed: stats snapshot
            rejected: self.shared.rejected.load(Ordering::Relaxed),   // Relaxed: stats snapshot
            jobs_by_state,
            latencies: self.shared.latency.summaries(),
        }
    }

    /// Stop accepting work, cancel queued jobs, and join the workers.
    /// Running jobs are flagged and finish at their next superstep
    /// boundary with a checkpoint.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock();
            queue.shutdown = true;
        }
        {
            let mut jobs = self.shared.jobs.lock();
            for rec in jobs.values_mut() {
                match rec.state {
                    JobState::Queued => {
                        // Relaxed: monotonic flag; jobs lock orders state.
                        rec.cancel.store(true, Ordering::Relaxed);
                        rec.state = JobState::Cancelled;
                        rec.finished = Some(Instant::now());
                    }
                    // Relaxed: monotonic flag, polled at superstep bounds.
                    JobState::Running => rec.cancel.store(true, Ordering::Relaxed),
                    _ => {}
                }
            }
        }
        self.shared.cond.notify_all();
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let entry = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(e) = queue.heap.pop() {
                    break e;
                }
                if queue.shutdown {
                    return;
                }
                shared.cond.wait(&mut queue);
            }
        };
        run_one(shared, entry.id);
    }
}

fn run_one(shared: &Shared, id: JobId) {
    // Claim the job; skip entries whose job was cancelled while queued.
    let (spec, graph, cancel, resume_from, deadline) = {
        let mut jobs = shared.jobs.lock();
        let rec = match jobs.get_mut(&id) {
            Some(rec) => rec,
            None => return,
        };
        if rec.state != JobState::Queued {
            return;
        }
        rec.state = JobState::Running;
        rec.started = Some(Instant::now());
        let deadline = rec
            .spec
            .deadline_ms
            .map(|ms| rec.submitted + Duration::from_millis(ms));
        (
            rec.spec.clone(),
            Arc::clone(&rec.graph),
            Arc::clone(&rec.cancel),
            rec.resume_from.take(),
            deadline,
        )
    };

    let stop = {
        let cancel = Arc::clone(&cancel);
        // Relaxed: the flag is monotonic and only gates an early cut; a
        // stale read costs at most one extra superstep.
        move || cancel.load(Ordering::Relaxed) || deadline.is_some_and(|d| Instant::now() >= d)
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute(&spec, &graph, resume_from, &stop)
    }));

    let mut jobs = shared.jobs.lock();
    let rec = match jobs.get_mut(&id) {
        Some(rec) => rec,
        None => return,
    };
    let now = Instant::now();
    rec.finished = Some(now);
    match outcome {
        Ok(Ok(ExecVerdict::Completed { output, supersteps })) => {
            rec.state = JobState::Completed;
            rec.supersteps = supersteps;
            rec.output = Some(output);
            let us = now.duration_since(rec.submitted).as_micros() as u64;
            shared.latency.record(
                &format!("{}/{}", spec.algorithm.name(), spec.engine.name()),
                us,
            );
        }
        Ok(Ok(ExecVerdict::Interrupted {
            checkpoint,
            supersteps,
        })) => {
            rec.supersteps = supersteps;
            rec.checkpoint = Some(checkpoint);
            // Why did the run stop?  Cancel flag and deadline map to
            // their own states; otherwise the superstep budget cut it.
            // Relaxed: post-run classification; the flag only ever goes
            // false -> true, so a stale read misclassifies toward the
            // benign `Interrupted` state.
            rec.state = if cancel.load(Ordering::Relaxed) {
                if deadline.is_some_and(|d| now >= d) {
                    JobState::TimedOut
                } else {
                    JobState::Cancelled
                }
            } else if deadline.is_some_and(|d| now >= d) {
                JobState::TimedOut
            } else {
                JobState::Interrupted
            };
        }
        Ok(Err(err)) => {
            rec.state = JobState::Failed;
            rec.error = Some(err.to_string());
        }
        Err(panic) => {
            rec.state = JobState::Failed;
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "vertex program panicked".to_string());
            rec.error = Some(format!("panic: {message}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Algorithm, Engine};
    use xmt_bsp::{ActiveSetStrategy, BspConfig};
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::path;

    fn spec(graph: &str) -> JobSpec {
        // Worklist active sets keep each of the path's many supersteps
        // O(frontier); the raised superstep cap lets the job finish.
        let config = BspConfig {
            active_set: ActiveSetStrategy::Worklist,
            max_supersteps: 1_000_000,
            ..BspConfig::default()
        };
        JobSpec {
            algorithm: Algorithm::Cc,
            engine: Engine::Bsp,
            graph: graph.to_string(),
            source: 0,
            damping: 0.85,
            tolerance: 1e-7,
            config,
            priority: 0,
            deadline_ms: None,
        }
    }

    fn long_path() -> Arc<Csr> {
        // CC on a path needs one superstep per hop of label distance, so
        // a long path keeps a worker busy for a while (every superstep
        // pays a pool round-trip) yet checkpoints instantly at any
        // boundary.
        Arc::new(build_undirected(&path(16_000)))
    }

    #[test]
    fn queue_full_rejects_with_typed_error() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 2,
        });
        let g = long_path();
        // Saturate: the worker takes one job, two more sit in the queue.
        let mut admitted = Vec::new();
        let mut rejected = 0;
        for _ in 0..16 {
            match sched.submit(spec("p"), Arc::clone(&g), None) {
                Ok(id) => admitted.push(id),
                Err(ServiceError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected > 0, "admission control never kicked in");
        assert!(admitted.len() >= 2, "queue admitted too few");
        assert_eq!(sched.stats().rejected, rejected);
        for id in &admitted {
            let _ = sched.cancel(*id);
        }
        sched.shutdown();
    }

    #[test]
    fn deadline_cuts_a_run_into_a_resumable_checkpoint() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let g = long_path();
        let mut s = spec("p");
        s.deadline_ms = Some(10);
        let id = sched.submit(s, Arc::clone(&g), None).unwrap();
        let snap = wait_terminal(&sched, id);
        assert_eq!(snap.state, JobState::TimedOut);
        assert!(snap.has_checkpoint, "timed-out job kept no checkpoint");
        assert!(snap.supersteps >= 1);

        // Resume to completion (without the old deadline, which would
        // just cut the continuation again).
        let (mut orig_spec, orig_graph, cp) = sched.take_checkpoint(id).unwrap();
        orig_spec.deadline_ms = None;
        let resumed = sched.submit(orig_spec, orig_graph, Some(cp)).unwrap();
        let snap = wait_terminal(&sched, resumed);
        assert_eq!(snap.state, JobState::Completed, "err={:?}", snap.error);
        let (output, _) = sched.output(resumed).unwrap();
        let JobOutput::Labels(labels) = output else {
            panic!("cc job returned non-label output");
        };
        assert!(labels.iter().all(|&l| l == 0), "path has one component");
        // The checkpoint moved: a second resume is refused.
        assert_eq!(
            sched.take_checkpoint(id).unwrap_err(),
            ServiceError::NoCheckpoint { id }
        );
        sched.shutdown();
    }

    #[test]
    fn cancel_mid_run_leaves_the_pool_healthy() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let g = long_path();
        let id = sched.submit(spec("p"), Arc::clone(&g), None).unwrap();
        // Let it start, then cancel mid-run.
        loop {
            let snap = sched.status(id).unwrap();
            if snap.state != JobState::Queued {
                break;
            }
            std::thread::yield_now();
        }
        let _ = sched.cancel(id);
        let snap = wait_terminal(&sched, id);
        assert_eq!(snap.state, JobState::Cancelled);
        assert!(snap.has_checkpoint);

        // The same worker still serves new jobs.
        let small = Arc::new(build_undirected(&path(64)));
        let id2 = sched.submit(spec("small"), small, None).unwrap();
        let snap = wait_terminal(&sched, id2);
        assert_eq!(snap.state, JobState::Completed);
        sched.shutdown();
    }

    #[test]
    fn priorities_run_before_fifo_ties() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 16,
        });
        let g = long_path();
        // Occupy the worker so the queue orders the rest.
        let blocker = sched.submit(spec("p"), Arc::clone(&g), None).unwrap();
        let small = Arc::new(build_undirected(&path(32)));
        let lo = sched.submit(spec("lo"), Arc::clone(&small), None).unwrap();
        let mut hi_spec = spec("hi");
        hi_spec.priority = 9;
        let hi = sched.submit(hi_spec, Arc::clone(&small), None).unwrap();
        let _ = sched.cancel(blocker);
        let hi_snap = wait_terminal(&sched, hi);
        let lo_snap = sched.status(lo).unwrap();
        // When `hi` finished, `lo` must not have finished before it
        // started: the high-priority job was picked first.
        assert_eq!(hi_snap.state, JobState::Completed);
        assert!(
            lo_snap.state == JobState::Queued
                || lo_snap.state == JobState::Running
                || lo_snap.state == JobState::Completed
        );
        let lo_snap = wait_terminal(&sched, lo);
        assert_eq!(lo_snap.state, JobState::Completed);
        sched.shutdown();
    }

    fn wait_terminal(sched: &Scheduler, id: JobId) -> JobSnapshot {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let snap = sched.status(id).unwrap();
            if snap.state.is_terminal() {
                return snap;
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
