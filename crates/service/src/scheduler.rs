//! The bounded job scheduler: a fixed worker pool draining a
//! priority/FIFO queue with admission control.
//!
//! The queue has a hard capacity; a submit that finds it full is
//! rejected immediately with [`ServiceError::QueueFull`] instead of
//! buffering unbounded work (the closed-loop bench driver leans on this
//! to measure saturation).  Within the queue, higher `priority` runs
//! first and ties break FIFO by submission order.
//!
//! Cancellation and deadlines share one mechanism: each job carries an
//! atomic cancel flag, and the worker hands the BSP engine a stop hook
//! (`cancelled || past deadline`) that is polled at superstep
//! boundaries.  A cut run comes back as a [`StoredCheckpoint`] and the
//! job lands in `Cancelled`/`TimedOut`/`Interrupted` with the checkpoint
//! attached — a follow-up `resume` submission continues it exactly.
//! Worker threads wrap engine calls in `catch_unwind`, so a panicking
//! program marks its job `Failed` and the pool stays healthy.

use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::engine::{execute, ExecVerdict};
use crate::error::ServiceError;
use crate::job::{JobGraph, JobId, JobOutput, JobSpec, JobState, StoredCheckpoint, StoredFrame};
use crate::stats::{LatencyBook, LatencySummary};

/// Scheduler sizing.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Queue capacity; submits beyond it are rejected (`queue_full`).
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            queue_capacity: 64,
        }
    }
}

/// What `status`/`list` report about a job.
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// Job id.
    pub id: JobId,
    /// Kernel name (`cc`/`bfs`/`pagerank`).
    pub algorithm: &'static str,
    /// Engine name (`bsp`/`native`/`graphct`).
    pub engine: &'static str,
    /// Target graph's registry name.
    pub graph: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Scheduling priority.
    pub priority: u8,
    /// Time spent queued (ms); final once running.
    pub queued_ms: u64,
    /// Time spent running (ms); final once terminal.
    pub running_ms: u64,
    /// Supersteps executed (meaningful once terminal).
    pub supersteps: u64,
    /// The snapshot epoch the job computes against (0 for static
    /// graphs); constant across deadline cuts and resumes.
    pub epoch: u64,
    /// Whether a resumable checkpoint is attached.
    pub has_checkpoint: bool,
    /// Failure message, if the job failed.
    pub error: Option<String>,
}

struct JobRecord {
    spec: JobSpec,
    graph: JobGraph,
    state: JobState,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
    supersteps: u64,
    output: Option<JobOutput>,
    error: Option<String>,
    checkpoint: Option<StoredCheckpoint>,
    resume_from: Option<StoredCheckpoint>,
    /// The warmed [`StoredFrame`] travelling with the job: set at
    /// submit time for a resume, taken by the worker when the run
    /// starts, and re-attached when an interrupted run hands it back.
    frame: Option<StoredFrame>,
    /// Per-superstep trace, set when the run ends (empty series when
    /// the `trace` feature is off).
    trace: Option<xmt_trace::JobTrace>,
}

impl JobRecord {
    fn snapshot(&self, id: JobId) -> JobSnapshot {
        let queued_ms = self
            .started
            .unwrap_or_else(Instant::now)
            .duration_since(self.submitted)
            .as_millis() as u64;
        let running_ms = match self.started {
            None => 0,
            Some(started) => self
                .finished
                .unwrap_or_else(Instant::now)
                .duration_since(started)
                .as_millis() as u64,
        };
        JobSnapshot {
            id,
            algorithm: self.spec.algorithm.name(),
            engine: self.spec.engine.name(),
            graph: self.spec.graph.clone(),
            state: self.state,
            priority: self.spec.priority,
            queued_ms,
            running_ms,
            supersteps: self.supersteps,
            epoch: self.graph.epoch,
            has_checkpoint: self.checkpoint.is_some(),
            error: self.error.clone(),
        }
    }
}

/// Heap entry: max priority first, then FIFO by submission sequence.
struct QueueEntry {
    priority: u8,
    seq: u64,
    id: JobId,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins, then *lower*
        // sequence (earlier submit).
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Queue {
    heap: BinaryHeap<QueueEntry>,
    /// Heap entries whose job was cancelled while queued.  The entries
    /// stay in the heap (a `BinaryHeap` cannot remove by key) and
    /// workers discard them on pop, but they must not count toward the
    /// live queue depth: admission control would otherwise reject
    /// submits against dead entries, and `stats()` would overcount.
    stale: usize,
    shutdown: bool,
}

impl Queue {
    /// Entries that represent jobs which will actually run.
    fn live_depth(&self) -> usize {
        self.heap.len().saturating_sub(self.stale)
    }
}

// The scheduler's lock hierarchy, outermost first: admission takes the
// queue lock then registers under the jobs lock; completion updates a
// job record then records its latency series.  Machine-checked by the
// workspace lock-order analysis (`cargo run -p xmt-lint -- --locks`).
// lint:order: queue < jobs < series
struct Shared {
    queue: Mutex<Queue>,
    cond: Condvar,
    jobs: Mutex<HashMap<JobId, JobRecord>>,
    /// Signalled (broadcast) on every job state transition, so waiters
    /// in [`Scheduler::wait_job`] wake immediately instead of polling.
    jobs_cond: Condvar,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    latency: LatencyBook,
    config: SchedulerConfig,
}

/// Aggregate scheduler counters for the `stats` request.
#[derive(Clone, Debug)]
pub struct SchedulerStats {
    /// Configured worker count.
    pub workers: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Jobs accepted since startup.
    pub submitted: u64,
    /// Jobs rejected by admission control since startup.
    pub rejected: u64,
    /// `(state name, count)` over all tracked jobs, sorted by name.
    pub jobs_by_state: Vec<(&'static str, u64)>,
    /// Per-`algorithm/engine` completion latency series.
    pub latencies: Vec<LatencySummary>,
}

/// A fixed pool of workers over a bounded priority queue.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Start `config.workers` worker threads (at least one).
    pub fn new(config: SchedulerConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                heap: BinaryHeap::new(),
                stale: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            jobs_cond: Condvar::new(),
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            latency: LatencyBook::default(),
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // lint:allow(no-panic-in-lib): thread spawn fails only
                    // on OS resource exhaustion at construction time;
                    // there is no scheduler to degrade gracefully yet.
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admit a job: bounded-queue admission control, then enqueue.
    /// `graph` is the handle resolved at admission (a plain `Arc<Csr>`
    /// converts to an epoch-0 static handle); for dynamic graphs it pins
    /// the epoch snapshot the job computes against.  `resume_from`
    /// continues an interrupted run from its checkpoint; `resume_frame`
    /// optionally rides along with the interrupted run's warmed
    /// superstep frame (skipping the continuation's warm-up allocations
    /// — results are identical with or without it).
    pub fn submit(
        &self,
        spec: JobSpec,
        graph: impl Into<JobGraph>,
        resume_from: Option<StoredCheckpoint>,
        resume_frame: Option<StoredFrame>,
    ) -> Result<JobId, ServiceError> {
        let graph = graph.into();
        let id = {
            let mut queue = self.shared.queue.lock();
            if queue.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if queue.live_depth() >= self.shared.config.queue_capacity {
                // Relaxed: monotonic stats counter, read only by stats().
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::QueueFull {
                    capacity: self.shared.config.queue_capacity,
                });
            }
            // Relaxed (both): id/seq allocation needs only the RMW's
            // atomicity for uniqueness; the values travel to workers via
            // the jobs/queue locks.
            let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
            let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed); // Relaxed: as above
            let priority = spec.priority;
            // Record before the entry is visible to workers, so a pop
            // always finds its job.
            self.shared.jobs.lock().insert(
                id,
                JobRecord {
                    spec,
                    graph,
                    state: JobState::Queued,
                    cancel: Arc::new(AtomicBool::new(false)),
                    submitted: Instant::now(),
                    started: None,
                    finished: None,
                    supersteps: 0,
                    output: None,
                    error: None,
                    checkpoint: None,
                    resume_from,
                    frame: resume_frame,
                    trace: None,
                },
            );
            queue.heap.push(QueueEntry { priority, seq, id });
            // Count inside the queue lock so `stats()` (which reads the
            // depth under the same lock) never observes a queue deeper
            // than the submitted total.
            // Relaxed: the queue lock provides the ordering; the counter
            // itself is a monotonic stat.
            self.shared.submitted.fetch_add(1, Ordering::Relaxed);
            id
        };
        self.shared.cond.notify_one();
        Ok(id)
    }

    /// Request cancellation.  A queued job is cancelled on the spot; a
    /// running job gets its flag set and is cut at the next superstep
    /// boundary.  Cancelling a terminal job is a `wrong_state` error.
    pub fn cancel(&self, id: JobId) -> Result<JobState, ServiceError> {
        // Queue lock before jobs lock — the order `submit` established.
        // Cancelling a queued job must mark its heap entry stale under
        // the same critical section that flips the state, or a stats
        // reader between the two would see the depth and the state
        // disagree.
        let mut queue = self.shared.queue.lock();
        let mut jobs = self.shared.jobs.lock();
        let rec = jobs.get_mut(&id).ok_or(ServiceError::JobNotFound { id })?;
        let result = match rec.state {
            JobState::Queued => {
                // The heap entry stays; workers discard it on pop and
                // balance the stale count then.
                // Relaxed: single monotonic flag, polled at superstep
                // boundaries; the jobs lock orders the state change.
                rec.cancel.store(true, Ordering::Relaxed);
                rec.state = JobState::Cancelled;
                rec.finished = Some(Instant::now());
                queue.stale += 1;
                Ok(JobState::Cancelled)
            }
            JobState::Running => {
                // Relaxed: single monotonic flag; a slightly late read by
                // the worker only delays the cut by one superstep.
                rec.cancel.store(true, Ordering::Relaxed);
                Ok(JobState::Running)
            }
            other => Err(ServiceError::WrongState {
                id,
                state: other.name().to_string(),
            }),
        };
        drop(jobs);
        drop(queue);
        if matches!(result, Ok(JobState::Cancelled)) {
            self.shared.jobs_cond.notify_all();
        }
        result
    }

    /// A job's current snapshot.
    pub fn status(&self, id: JobId) -> Result<JobSnapshot, ServiceError> {
        let jobs = self.shared.jobs.lock();
        jobs.get(&id)
            .map(|rec| rec.snapshot(id))
            .ok_or(ServiceError::JobNotFound { id })
    }

    /// Snapshots of every tracked job, sorted by id.
    pub fn list(&self) -> Vec<JobSnapshot> {
        let jobs = self.shared.jobs.lock();
        let mut out: Vec<JobSnapshot> = jobs.iter().map(|(id, rec)| rec.snapshot(*id)).collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// A completed job's output (cloned).  Non-terminal jobs are
    /// `wrong_state`; failed jobs surface their stored error.
    pub fn output(&self, id: JobId) -> Result<(JobOutput, u64), ServiceError> {
        let jobs = self.shared.jobs.lock();
        let rec = jobs.get(&id).ok_or(ServiceError::JobNotFound { id })?;
        match rec.state {
            JobState::Completed => Ok((
                rec.output
                    .clone()
                    // lint:allow(no-panic-in-lib): invariant — run_one
                    // sets `output` in the same locked section that sets
                    // `state = Completed`.
                    .expect("completed job has output"),
                rec.supersteps,
            )),
            JobState::Failed => Err(ServiceError::Internal {
                message: rec
                    .error
                    .clone()
                    .unwrap_or_else(|| "job failed".to_string()),
            }),
            other => Err(ServiceError::WrongState {
                id,
                state: other.name().to_string(),
            }),
        }
    }

    /// Take an interrupted job's checkpoint (and warmed frame, when the
    /// run left one) for resumption.  Move semantics: both transfer to
    /// the new job, so a stale double-resume gets `no_checkpoint`
    /// instead of forking the run.  The returned [`JobGraph`] is the
    /// *original* epoch handle — a resume continues against the exact
    /// snapshot the interrupted run saw, regardless of update batches
    /// that landed in between.
    #[allow(clippy::type_complexity)]
    pub fn take_checkpoint(
        &self,
        id: JobId,
    ) -> Result<(JobSpec, JobGraph, StoredCheckpoint, Option<StoredFrame>), ServiceError> {
        let mut jobs = self.shared.jobs.lock();
        let rec = jobs.get_mut(&id).ok_or(ServiceError::JobNotFound { id })?;
        match rec.state {
            JobState::Cancelled | JobState::TimedOut | JobState::Interrupted => rec
                .checkpoint
                .take()
                .map(|cp| (rec.spec.clone(), rec.graph.clone(), cp, rec.frame.take()))
                .ok_or(ServiceError::NoCheckpoint { id }),
            other => Err(ServiceError::WrongState {
                id,
                state: other.name().to_string(),
            }),
        }
    }

    /// Block until `pred` holds for the job's snapshot or `wait`
    /// elapses.  Returns the final snapshot plus `true` when the wait
    /// timed out with the predicate still false.  Wakes on job state
    /// transitions via a condvar — no sleep-polling — so the latency
    /// from transition to return is a wakeup, not a poll interval.
    pub fn wait_job(
        &self,
        id: JobId,
        wait: Duration,
        pred: impl Fn(&JobSnapshot) -> bool,
    ) -> Result<(JobSnapshot, bool), ServiceError> {
        let deadline = Instant::now() + wait;
        let mut jobs = self.shared.jobs.lock();
        loop {
            let snap = jobs
                .get(&id)
                .map(|rec| rec.snapshot(id))
                .ok_or(ServiceError::JobNotFound { id })?;
            if pred(&snap) {
                return Ok((snap, false));
            }
            // The compat condvar has no deadline wait; recompute the
            // remaining budget each pass so spurious wakeups cannot
            // extend the total wait.
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok((snap, true));
            }
            self.shared.jobs_cond.wait_for(&mut jobs, remaining);
        }
    }

    /// [`wait_job`](Self::wait_job) specialised to terminal states.
    pub fn wait_terminal(
        &self,
        id: JobId,
        wait: Duration,
    ) -> Result<(JobSnapshot, bool), ServiceError> {
        self.wait_job(id, wait, |snap| snap.state.is_terminal())
    }

    /// A terminal job's per-superstep trace (cloned).  The series is
    /// empty when the `trace` feature is off or the engine produced no
    /// superstep records; non-terminal jobs are `wrong_state`.
    pub fn trace(&self, id: JobId) -> Result<xmt_trace::JobTrace, ServiceError> {
        let jobs = self.shared.jobs.lock();
        let rec = jobs.get(&id).ok_or(ServiceError::JobNotFound { id })?;
        if !rec.state.is_terminal() {
            return Err(ServiceError::WrongState {
                id,
                state: rec.state.name().to_string(),
            });
        }
        Ok(rec.trace.clone().unwrap_or_else(|| xmt_trace::JobTrace {
            label: format!("{}/{}", rec.spec.algorithm.name(), rec.spec.engine.name()),
            supersteps: Vec::new(),
        }))
    }

    /// Aggregate counters and latency summaries.
    pub fn stats(&self) -> SchedulerStats {
        let queue_depth = self.shared.queue.lock().live_depth();
        let mut by_state: HashMap<&'static str, u64> = HashMap::new();
        {
            let jobs = self.shared.jobs.lock();
            for rec in jobs.values() {
                *by_state.entry(rec.state.name()).or_insert(0) += 1;
            }
        }
        let mut jobs_by_state: Vec<(&'static str, u64)> = by_state.into_iter().collect();
        jobs_by_state.sort_by_key(|(name, _)| *name);
        SchedulerStats {
            workers: self.shared.config.workers.max(1),
            queue_capacity: self.shared.config.queue_capacity,
            queue_depth,
            submitted: self.shared.submitted.load(Ordering::Relaxed), // Relaxed: stats snapshot
            rejected: self.shared.rejected.load(Ordering::Relaxed),   // Relaxed: stats snapshot
            jobs_by_state,
            latencies: self.shared.latency.summaries(),
        }
    }

    /// Stop accepting work, cancel queued jobs, and join the workers.
    /// Running jobs are flagged and finish at their next superstep
    /// boundary with a checkpoint.
    pub fn shutdown(&self) {
        {
            // Queue before jobs — the established nesting order.  Each
            // queued job cancelled here leaves a stale heap entry, so
            // the counts must move together under the queue lock.
            let mut queue = self.shared.queue.lock();
            queue.shutdown = true;
            let mut jobs = self.shared.jobs.lock();
            for rec in jobs.values_mut() {
                match rec.state {
                    JobState::Queued => {
                        // Relaxed: monotonic flag; jobs lock orders state.
                        rec.cancel.store(true, Ordering::Relaxed);
                        rec.state = JobState::Cancelled;
                        rec.finished = Some(Instant::now());
                        queue.stale += 1;
                    }
                    // Relaxed: monotonic flag, polled at superstep bounds.
                    JobState::Running => rec.cancel.store(true, Ordering::Relaxed),
                    _ => {}
                }
            }
        }
        self.shared.cond.notify_all();
        self.shared.jobs_cond.notify_all();
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let entry = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(e) = queue.heap.pop() {
                    break e;
                }
                if queue.shutdown {
                    return;
                }
                shared.cond.wait(&mut queue);
            }
        };
        if !run_one(shared, entry.id) {
            // The popped entry was stale (its job was cancelled while
            // queued, or evicted).  Balance the stale count bumped at
            // cancel time.
            let mut queue = shared.queue.lock();
            queue.stale = queue.stale.saturating_sub(1);
        }
    }
}

/// Run the job behind a popped queue entry.  Returns `false` when the
/// entry was stale — the job was no longer `Queued` (cancelled while it
/// waited) or no longer tracked — so the caller can settle the queue's
/// stale-entry count.
fn run_one(shared: &Shared, id: JobId) -> bool {
    // Claim the job; skip entries whose job was cancelled while queued.
    let (spec, graph, precomputed, cancel, resume_from, resume_frame, deadline) = {
        let mut jobs = shared.jobs.lock();
        let rec = match jobs.get_mut(&id) {
            Some(rec) => rec,
            None => return false,
        };
        if rec.state != JobState::Queued {
            return false;
        }
        rec.state = JobState::Running;
        rec.started = Some(Instant::now());
        let deadline = rec
            .spec
            .deadline_ms
            .map(|ms| rec.submitted + Duration::from_millis(ms));
        (
            rec.spec.clone(),
            Arc::clone(&rec.graph.csr),
            rec.graph.precomputed.take(),
            Arc::clone(&rec.cancel),
            rec.resume_from.take(),
            rec.frame.take(),
            deadline,
        )
    };
    // The claim above flipped Queued -> Running; wake status waiters.
    shared.jobs_cond.notify_all();

    let stop = {
        let cancel = Arc::clone(&cancel);
        // Relaxed: the flag is monotonic and only gates an early cut; a
        // stale read costs at most one extra superstep.
        move || cancel.load(Ordering::Relaxed) || deadline.is_some_and(|d| Instant::now() >= d)
    };
    // One sink per run: resumed jobs get a fresh sink whose records
    // continue the checkpoint's absolute superstep numbering.
    let mut sink = xmt_trace::TraceSink::new();
    let outcome = match precomputed {
        // Incremental-engine jobs carry their answer from admission
        // (captured atomically with the epoch snapshot); nothing to run.
        Some(output) => Ok(Ok(ExecVerdict::Completed {
            output,
            supersteps: 0,
        })),
        None => catch_unwind(AssertUnwindSafe(|| {
            execute(&spec, &graph, resume_from, resume_frame, &stop, &mut sink)
        })),
    };

    let mut jobs = shared.jobs.lock();
    let rec = match jobs.get_mut(&id) {
        Some(rec) => rec,
        None => return true,
    };
    rec.trace = Some(xmt_trace::JobTrace {
        label: format!("{}/{}", spec.algorithm.name(), spec.engine.name()),
        // lint:allow(guard-across-call): finish() only drains the sink's
        // already-collected superstep records into a Vec; attaching the
        // trace must be atomic with the state transition below.
        supersteps: sink.finish(),
    });
    let now = Instant::now();
    rec.finished = Some(now);
    match outcome {
        Ok(Ok(ExecVerdict::Completed { output, supersteps })) => {
            rec.state = JobState::Completed;
            rec.supersteps = supersteps;
            rec.output = Some(output);
            let us = now.duration_since(rec.submitted).as_micros() as u64;
            shared.latency.record(
                &format!("{}/{}", spec.algorithm.name(), spec.engine.name()),
                us,
            );
        }
        Ok(Ok(ExecVerdict::Interrupted {
            checkpoint,
            frame,
            supersteps,
        })) => {
            rec.supersteps = supersteps;
            rec.checkpoint = Some(checkpoint);
            rec.frame = Some(frame);
            // Why did the run stop?  Cancel flag and deadline map to
            // their own states; otherwise the superstep budget cut it.
            // Relaxed: post-run classification; the flag only ever goes
            // false -> true, so a stale read misclassifies toward the
            // benign `Interrupted` state.
            rec.state = if cancel.load(Ordering::Relaxed) {
                if deadline.is_some_and(|d| now >= d) {
                    JobState::TimedOut
                } else {
                    JobState::Cancelled
                }
            } else if deadline.is_some_and(|d| now >= d) {
                JobState::TimedOut
            } else {
                JobState::Interrupted
            };
        }
        Ok(Err(err)) => {
            rec.state = JobState::Failed;
            rec.error = Some(err.to_string());
        }
        Err(panic) => {
            rec.state = JobState::Failed;
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "vertex program panicked".to_string());
            rec.error = Some(format!("panic: {message}"));
        }
    }
    drop(jobs);
    // Terminal transition: wake anyone blocked in wait_job.
    shared.jobs_cond.notify_all();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Algorithm, Engine};
    use xmt_bsp::{ActiveSetStrategy, BspConfig};
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::path;
    use xmt_graph::Csr;

    fn spec(graph: &str) -> JobSpec {
        // Worklist active sets keep each of the path's many supersteps
        // O(frontier); the raised superstep cap lets the job finish.
        let config = BspConfig {
            active_set: ActiveSetStrategy::Worklist,
            max_supersteps: 1_000_000,
            ..BspConfig::default()
        };
        JobSpec {
            algorithm: Algorithm::Cc,
            engine: Engine::Bsp,
            graph: graph.to_string(),
            source: 0,
            damping: 0.85,
            tolerance: 1e-7,
            config,
            priority: 0,
            deadline_ms: None,
        }
    }

    fn long_path() -> Arc<Csr> {
        // CC on a path needs one superstep per hop of label distance, so
        // a long path keeps a worker busy for a while (every superstep
        // pays a pool round-trip) yet checkpoints instantly at any
        // boundary.
        Arc::new(build_undirected(&path(16_000)))
    }

    #[test]
    fn queue_full_rejects_with_typed_error() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 2,
        });
        let g = long_path();
        // Saturate: the worker takes one job, two more sit in the queue.
        let mut admitted = Vec::new();
        let mut rejected = 0;
        for _ in 0..16 {
            match sched.submit(spec("p"), Arc::clone(&g), None, None) {
                Ok(id) => admitted.push(id),
                Err(ServiceError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected > 0, "admission control never kicked in");
        assert!(admitted.len() >= 2, "queue admitted too few");
        assert_eq!(sched.stats().rejected, rejected);
        for id in &admitted {
            let _ = sched.cancel(*id);
        }
        sched.shutdown();
    }

    #[test]
    fn deadline_cuts_a_run_into_a_resumable_checkpoint() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let g = long_path();
        let mut s = spec("p");
        s.deadline_ms = Some(10);
        let id = sched.submit(s, Arc::clone(&g), None, None).unwrap();
        let snap = wait_terminal(&sched, id);
        assert_eq!(snap.state, JobState::TimedOut);
        assert!(snap.has_checkpoint, "timed-out job kept no checkpoint");
        assert!(snap.supersteps >= 1);

        // Resume to completion (without the old deadline, which would
        // just cut the continuation again).
        let (mut orig_spec, orig_graph, cp, frame) = sched.take_checkpoint(id).unwrap();
        orig_spec.deadline_ms = None;
        assert!(frame.is_some(), "interrupted bsp run kept no frame");
        let resumed = sched
            .submit(orig_spec, orig_graph, Some(cp), frame)
            .unwrap();
        let snap = wait_terminal(&sched, resumed);
        assert_eq!(snap.state, JobState::Completed, "err={:?}", snap.error);
        let (output, _) = sched.output(resumed).unwrap();
        let JobOutput::Labels(labels) = output else {
            panic!("cc job returned non-label output");
        };
        assert!(labels.iter().all(|&l| l == 0), "path has one component");
        // The checkpoint moved: a second resume is refused.
        assert_eq!(
            sched.take_checkpoint(id).unwrap_err(),
            ServiceError::NoCheckpoint { id }
        );
        sched.shutdown();
    }

    #[test]
    fn native_engine_checkpoint_resumes_across_engines() {
        // Cut a run on the native engine, resume it on the sim engine:
        // the two BSP executors share programs, frames and checkpoints,
        // so a boundary cut on one continues exactly on the other.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let g = long_path();
        let mut s = spec("p");
        s.engine = Engine::Native;
        s.deadline_ms = Some(10);
        let id = sched.submit(s, Arc::clone(&g), None, None).unwrap();
        let snap = wait_terminal(&sched, id);
        assert_eq!(snap.state, JobState::TimedOut);
        assert_eq!(snap.engine, "native");
        assert!(
            snap.has_checkpoint,
            "timed-out native job kept no checkpoint"
        );
        assert!(snap.supersteps >= 1);

        let (mut orig_spec, orig_graph, cp, frame) = sched.take_checkpoint(id).unwrap();
        orig_spec.deadline_ms = None;
        orig_spec.engine = Engine::Bsp;
        assert!(frame.is_some(), "interrupted native run kept no frame");
        let resumed = sched
            .submit(orig_spec, orig_graph, Some(cp), frame)
            .unwrap();
        let snap = wait_terminal(&sched, resumed);
        assert_eq!(snap.state, JobState::Completed, "err={:?}", snap.error);
        let (output, _) = sched.output(resumed).unwrap();
        let JobOutput::Labels(labels) = output else {
            panic!("cc job returned non-label output");
        };
        assert!(labels.iter().all(|&l| l == 0), "path has one component");
        sched.shutdown();
    }

    #[test]
    fn cancel_mid_run_leaves_the_pool_healthy() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let g = long_path();
        let id = sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap();
        // Let it start, then cancel mid-run.  The condvar wait wakes on
        // the Queued -> Running transition — no spin.
        let (snap, timed_out) = sched
            .wait_job(id, Duration::from_secs(60), |s| s.state != JobState::Queued)
            .unwrap();
        assert!(!timed_out, "job never left the queue");
        assert_ne!(snap.state, JobState::Queued);
        let _ = sched.cancel(id);
        let snap = wait_terminal(&sched, id);
        assert_eq!(snap.state, JobState::Cancelled);
        assert!(snap.has_checkpoint);

        // The same worker still serves new jobs.
        let small = Arc::new(build_undirected(&path(64)));
        let id2 = sched.submit(spec("small"), small, None, None).unwrap();
        let snap = wait_terminal(&sched, id2);
        assert_eq!(snap.state, JobState::Completed);
        sched.shutdown();
    }

    #[test]
    fn priorities_run_before_fifo_ties() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 16,
        });
        let g = long_path();
        // Occupy the worker so the queue orders the rest.
        let blocker = sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap();
        let small = Arc::new(build_undirected(&path(32)));
        let lo = sched
            .submit(spec("lo"), Arc::clone(&small), None, None)
            .unwrap();
        let mut hi_spec = spec("hi");
        hi_spec.priority = 9;
        let hi = sched
            .submit(hi_spec, Arc::clone(&small), None, None)
            .unwrap();
        let _ = sched.cancel(blocker);
        let hi_snap = wait_terminal(&sched, hi);
        let lo_snap = sched.status(lo).unwrap();
        // When `hi` finished, `lo` must not have finished before it
        // started: the high-priority job was picked first.
        assert_eq!(hi_snap.state, JobState::Completed);
        assert!(
            lo_snap.state == JobState::Queued
                || lo_snap.state == JobState::Running
                || lo_snap.state == JobState::Completed
        );
        let lo_snap = wait_terminal(&sched, lo);
        assert_eq!(lo_snap.state, JobState::Completed);
        sched.shutdown();
    }

    fn wait_terminal(sched: &Scheduler, id: JobId) -> JobSnapshot {
        let (snap, timed_out) = sched.wait_terminal(id, Duration::from_secs(60)).unwrap();
        assert!(!timed_out, "job {id} never finished");
        snap
    }

    #[test]
    fn precomputed_jobs_complete_without_executing() {
        // Incremental-engine jobs arrive with their answer attached; the
        // worker must return it verbatim, run zero supersteps, and keep
        // the admission epoch visible in the snapshot.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let mut s = spec("dyn");
        s.algorithm = Algorithm::Triangles;
        s.engine = Engine::Incremental;
        let jg = JobGraph {
            csr: Arc::new(build_undirected(&path(8))),
            epoch: 3,
            precomputed: Some(JobOutput::Triangles(7)),
        };
        let id = sched.submit(s, jg, None, None).unwrap();
        let snap = wait_terminal(&sched, id);
        assert_eq!(snap.state, JobState::Completed, "err={:?}", snap.error);
        assert_eq!(snap.supersteps, 0);
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.engine, "incremental");
        let (output, supersteps) = sched.output(id).unwrap();
        assert_eq!(output, JobOutput::Triangles(7));
        assert_eq!(supersteps, 0);
        sched.shutdown();
    }

    #[test]
    fn cancelled_queued_jobs_free_their_queue_slots() {
        // One worker pinned on a long job; the queue then fills to
        // capacity.  Cancelling every queued job must restore the live
        // depth to zero and re-open admission, even though the heap
        // still physically holds the dead entries.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 3,
        });
        let g = long_path();
        let blocker = sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap();
        let (_, timed_out) = sched
            .wait_job(blocker, Duration::from_secs(60), |s| {
                s.state != JobState::Queued
            })
            .unwrap();
        assert!(!timed_out);

        let queued: Vec<JobId> = (0..3)
            .map(|_| sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap())
            .collect();
        assert!(matches!(
            sched.submit(spec("p"), Arc::clone(&g), None, None),
            Err(ServiceError::QueueFull { .. })
        ));
        for id in &queued {
            assert_eq!(sched.cancel(*id).unwrap(), JobState::Cancelled);
        }
        // The heap still holds 3 dead entries, but none of them count.
        assert_eq!(sched.stats().queue_depth, 0);
        // ... and admission control sees the free slots again.
        let small = Arc::new(build_undirected(&path(64)));
        let id = sched.submit(spec("small"), small, None, None).unwrap();
        let _ = sched.cancel(blocker);
        let snap = wait_terminal(&sched, id);
        assert_eq!(snap.state, JobState::Completed);
        // The workers drained the stale entries and settled the count.
        let (_, _) = sched
            .wait_terminal(blocker, Duration::from_secs(60))
            .unwrap();
        assert_eq!(sched.stats().queue_depth, 0);
        sched.shutdown();
    }

    #[test]
    fn queued_cancel_wakes_waiters_promptly() {
        // A cancelled queued job transitions with no worker involved;
        // only the condvar broadcast can wake the waiter.  Grant a 10 s
        // budget and require a wake orders of magnitude sooner than the
        // old 2 ms-poll worst case would suggest if notification broke.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let g = long_path();
        let blocker = sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap();
        let queued = sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap();

        let waiter = {
            let started = Instant::now();
            std::thread::scope(|scope| {
                let handle = scope.spawn(|| {
                    let (snap, timed_out) = sched
                        .wait_terminal(queued, Duration::from_secs(10))
                        .unwrap();
                    (snap, timed_out, started.elapsed())
                });
                // Give the waiter time to block, then cancel.
                std::thread::sleep(Duration::from_millis(50));
                sched.cancel(queued).unwrap();
                handle.join().unwrap()
            })
        };
        let (snap, timed_out, waited) = waiter;
        assert!(!timed_out);
        assert_eq!(snap.state, JobState::Cancelled);
        assert!(
            waited < Duration::from_secs(5),
            "condvar wake took {waited:?}; notification is broken"
        );
        let _ = sched.cancel(blocker);
        sched.shutdown();
    }

    #[test]
    fn wait_job_times_out_with_predicate_unmet() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let g = long_path();
        let blocker = sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap();
        let queued = sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap();
        // Nothing will run `queued` while the blocker holds the only
        // worker, so a short wait must report a timeout, not an error.
        let (snap, timed_out) = sched
            .wait_terminal(queued, Duration::from_millis(20))
            .unwrap();
        assert!(timed_out);
        assert_eq!(snap.state, JobState::Queued);
        let _ = sched.cancel(queued);
        let _ = sched.cancel(blocker);
        sched.shutdown();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_survives_deadline_checkpoint_resume_contiguously() {
        // Deadline cut -> checkpoint -> resume must yield two traces
        // whose absolute superstep numbers join with no gap or overlap.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let g = long_path();
        let mut s = spec("p");
        s.deadline_ms = Some(10);
        let id = sched.submit(s, Arc::clone(&g), None, None).unwrap();
        let snap = wait_terminal(&sched, id);
        assert_eq!(snap.state, JobState::TimedOut);
        let first = sched.trace(id).unwrap();
        assert_eq!(first.label, "cc/bsp");
        assert!(!first.supersteps.is_empty(), "cut run recorded no trace");
        assert_eq!(first.supersteps[0].superstep, 0);

        let (mut orig_spec, orig_graph, cp, frame) = sched.take_checkpoint(id).unwrap();
        orig_spec.deadline_ms = None;
        assert!(frame.is_some(), "interrupted bsp run kept no frame");
        let resumed = sched
            .submit(orig_spec, orig_graph, Some(cp), frame)
            .unwrap();
        let snap = wait_terminal(&sched, resumed);
        assert_eq!(snap.state, JobState::Completed, "err={:?}", snap.error);
        let second = sched.trace(resumed).unwrap();
        assert!(!second.supersteps.is_empty());

        // Contiguity across the resume cut: the second trace picks up
        // at exactly the next absolute superstep.
        let cut = first.supersteps.last().unwrap().superstep;
        assert_eq!(second.supersteps[0].superstep, cut + 1);
        let all: Vec<u64> = first
            .supersteps
            .iter()
            .chain(&second.supersteps)
            .map(|t| t.superstep)
            .collect();
        let expect: Vec<u64> = (0..all.len() as u64).collect();
        assert_eq!(all, expect, "combined series is not contiguous");
        sched.shutdown();
    }

    #[test]
    fn trace_of_nonterminal_job_is_wrong_state() {
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let g = long_path();
        let blocker = sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap();
        let queued = sched.submit(spec("p"), Arc::clone(&g), None, None).unwrap();
        assert!(matches!(
            sched.trace(queued),
            Err(ServiceError::WrongState { .. })
        ));
        assert!(matches!(
            sched.trace(9999),
            Err(ServiceError::JobNotFound { .. })
        ));
        let _ = sched.cancel(queued);
        let _ = sched.cancel(blocker);
        sched.shutdown();
    }
}
