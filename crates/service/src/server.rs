//! The service core and its TCP front end.
//!
//! [`Service`] glues the graph registry to the job scheduler and
//! dispatches parsed [`Request`]s — it is fully usable in-process (the
//! tests and the demo drive it without a socket).  [`Server`] puts it
//! behind a `TcpListener`: one thread per connection, newline-delimited
//! JSON in, newline-delimited JSON out.  Reads use a short timeout so
//! connection threads notice shutdown instead of blocking forever; the
//! accept loop is unblocked by a self-connect.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use serde::Content;

use crate::error::ServiceError;
use crate::job::JobState;
use crate::protocol::{
    build_graph, error_response, graph_content, job_content, ok, output_content, parse_request,
    stats_content, trace_content, update_content, update_trace_content, Request,
};
use crate::registry::GraphRegistry;
use crate::scheduler::{Scheduler, SchedulerConfig};

/// Service sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Scheduler worker threads.
    pub workers: usize,
    /// Job queue capacity (admission control bound).
    pub queue_capacity: usize,
    /// Registry memory budget in bytes (0 = unbounded).
    pub memory_budget_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            memory_budget_bytes: 0,
        }
    }
}

/// Registry + scheduler behind one request-dispatch surface.
pub struct Service {
    registry: GraphRegistry,
    scheduler: Scheduler,
}

impl Service {
    /// Build a service with the given sizing.
    pub fn new(config: ServiceConfig) -> Self {
        Service {
            registry: GraphRegistry::new(config.memory_budget_bytes),
            scheduler: Scheduler::new(SchedulerConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
            }),
        }
    }

    /// The graph registry (for in-process embedding).
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The job scheduler (for in-process embedding).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Dispatch one request to an `ok` response tree or a typed error.
    pub fn handle(&self, request: &Request) -> Result<Content, ServiceError> {
        match request {
            Request::Ping => Ok(ok().done()),
            Request::RegisterGraph {
                name,
                spec,
                dynamic,
            } => {
                let graph = build_graph(spec)?;
                let info = if *dynamic {
                    self.registry.register_dynamic(name, graph)?
                } else {
                    self.registry.register(name, graph)?
                };
                Ok(ok().put("graph", graph_content(&info)).done())
            }
            Request::Update {
                graph,
                insert,
                delete,
            } => {
                let outcome = self.registry.update(graph, insert, delete)?;
                Ok(ok().put("update", update_content(graph, &outcome)).done())
            }
            Request::UnregisterGraph { name } => {
                let removed = self.registry.unregister(name);
                Ok(ok().put("removed", Content::Bool(removed)).done())
            }
            Request::ListGraphs => Ok(ok()
                .put(
                    "graphs",
                    Content::Seq(self.registry.list().iter().map(graph_content).collect()),
                )
                .done()),
            Request::Submit { spec } => {
                // `admit` resolves the graph to an epoch snapshot (and,
                // for the incremental engine, the answer itself) under
                // the graph lock — the job is isolated from every batch
                // that lands after this point.
                let graph = self
                    .registry
                    .admit(&spec.graph, spec.algorithm, spec.engine)?;
                let id = self.scheduler.submit(spec.clone(), graph, None, None)?;
                Ok(ok().put("job_id", Content::U64(id)).done())
            }
            Request::Resume {
                job_id,
                deadline_ms,
            } => {
                let (mut spec, graph, checkpoint, frame) =
                    self.scheduler.take_checkpoint(*job_id)?;
                spec.deadline_ms = *deadline_ms;
                let from_superstep = checkpoint.superstep();
                let id = self
                    .scheduler
                    .submit(spec, graph, Some(checkpoint), frame)?;
                Ok(ok()
                    .put("job_id", Content::U64(id))
                    .put("resumed_from", Content::U64(*job_id))
                    .put("from_superstep", Content::U64(from_superstep))
                    .done())
            }
            Request::Status { job_id } => {
                let snap = self.scheduler.status(*job_id)?;
                Ok(ok().put("job", job_content(&snap)).done())
            }
            Request::Result { job_id, wait_ms } => {
                let (snap, timed_out) = self
                    .scheduler
                    .wait_terminal(*job_id, Duration::from_millis(*wait_ms))?;
                if timed_out {
                    // The *wait* expired with the job still live — a
                    // different condition from the job itself reaching
                    // the `timed_out` terminal state, so it rides as an
                    // explicit field instead of masquerading as an error.
                    return Ok(ok()
                        .put("timed_out", Content::Bool(true))
                        .put("job", job_content(&snap))
                        .done());
                }
                match snap.state {
                    JobState::Completed => {
                        let (output, supersteps) = self.scheduler.output(*job_id)?;
                        Ok(ok()
                            .put("job_id", Content::U64(*job_id))
                            .put("timed_out", Content::Bool(false))
                            .put("supersteps", Content::U64(supersteps))
                            .put("result", output_content(&output))
                            .done())
                    }
                    JobState::Failed => Err(self
                        .scheduler
                        .output(*job_id)
                        .expect_err("failed job has no output")),
                    other => Err(ServiceError::WrongState {
                        id: *job_id,
                        state: other.name().to_string(),
                    }),
                }
            }
            Request::Trace { job_id, graph } => match (job_id, graph) {
                (Some(id), _) => {
                    let trace = self.scheduler.trace(*id)?;
                    Ok(ok().put("trace", trace_content(&trace)).done())
                }
                (None, Some(name)) => {
                    let trace = self.registry.update_trace(name)?;
                    Ok(ok().put("trace", update_trace_content(&trace)).done())
                }
                // parse_request rejects the neither-target shape.
                (None, None) => Err(ServiceError::BadRequest {
                    message: "trace needs a `job_id` or a `graph`".to_string(),
                }),
            },
            Request::Cancel { job_id } => {
                let state = self.scheduler.cancel(*job_id)?;
                Ok(ok()
                    .put("state", Content::Str(state.name().to_string()))
                    .done())
            }
            Request::ListJobs => Ok(ok()
                .put(
                    "jobs",
                    Content::Seq(self.scheduler.list().iter().map(job_content).collect()),
                )
                .done()),
            Request::Stats => Ok(ok()
                .put(
                    "stats",
                    // Both snapshots are single-lock-coherent; see
                    // GraphRegistry::stats for the torn-read shape this
                    // replaced.
                    stats_content(&self.scheduler.stats(), &self.registry.stats()),
                )
                .done()),
            // The TCP layer intercepts Shutdown to stop the accept loop;
            // in-process callers get an acknowledgement.
            Request::Shutdown => Ok(ok().done()),
        }
    }

    /// Stop the scheduler (cancels queued work, joins workers).
    pub fn shutdown(&self) {
        self.scheduler.shutdown();
    }
}

/// A running TCP server around a [`Service`].
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, config: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            service: Arc::new(Service::new(config)),
            listener,
            addr,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for in-process inspection while serving).
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Serve until a `shutdown` request arrives.  Blocks; see
    /// [`Server::spawn`] for a background thread.
    pub fn run(self) {
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let service = Arc::clone(&self.service);
            let stop = Arc::clone(&self.stop);
            let addr = self.addr;
            let handle = std::thread::Builder::new()
                .name("svc-conn".to_string())
                .spawn(move || serve_connection(stream, &service, &stop, addr))
                // lint:allow(no-panic-in-lib): thread spawn fails only on
                // OS resource exhaustion; there is no useful way to keep
                // serving once threads cannot be created.
                .expect("spawn connection thread");
            connections.lock().push(handle);
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *connections.lock());
        for handle in handles {
            let _ = handle.join();
        }
        self.service.shutdown();
    }

    /// Serve on a background thread; returns the join handle.
    pub fn spawn(self) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("svc-accept".to_string())
            .spawn(move || self.run())
            // lint:allow(no-panic-in-lib): spawn fails only on OS
            // resource exhaustion at server startup.
            .expect("spawn server thread")
    }
}

fn serve_connection(
    stream: TcpStream,
    service: &Service,
    stop: &AtomicBool,
    server_addr: SocketAddr,
) {
    // Short read timeouts let the thread poll the stop flag instead of
    // parking forever on an idle client.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    // One-line responses must not sit in the Nagle buffer waiting for a
    // delayed ACK; without this every request/response pair costs ~40ms
    // on loopback regardless of the work done.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let parsed = serde_json::from_str::<Content>(&line)
            .map_err(|e| ServiceError::BadRequest {
                message: format!("invalid json: {e}"),
            })
            .and_then(|tree| parse_request(&tree));
        let is_shutdown = matches!(parsed, Ok(Request::Shutdown));
        let response = match parsed.and_then(|req| service.handle(&req)) {
            Ok(content) => content,
            Err(err) => error_response(&err),
        };
        let json = serde_json::to_string(&response).unwrap_or_else(|_| {
            r#"{"status":"error","code":"internal","message":"unserializable response"}"#
                .to_string()
        });
        let _ = writeln!(writer, "{json}");
        let _ = writer.flush();
        if is_shutdown {
            stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop with a self-connect.
            let _ = TcpStream::connect(server_addr);
            return;
        }
    }
}
