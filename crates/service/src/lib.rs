//! A long-running graph-analytics service over the BSP runtime.
//!
//! The distributed-graph-processing literature the paper draws on
//! (Pregel and its successors) treats graph analytics as a *service*:
//! load a graph once, then answer many queries against it.  This crate
//! is that deployment shape for this repo's engines — a graph
//! **registry** (named [`Csr`](xmt_graph::Csr) entries under a memory
//! budget with LRU eviction), a **bounded job scheduler** (fixed worker
//! pool, priority/FIFO queue, admission control, deadlines, cooperative
//! cancellation that reuses the BSP checkpoint machinery), and a
//! newline-delimited JSON **wire protocol** served over plain TCP with
//! no external dependencies.
//!
//! Interrupted work is never lost: cancelling or timing out a BSP job
//! cuts it at a superstep boundary into a [`StoredCheckpoint`], and a
//! `resume` request continues it exactly where it stopped.
//!
//! Graphs registered with `dynamic: true` additionally accept `update`
//! batches (edge inserts/deletes) while analytics jobs run: each job is
//! admitted against an immutable epoch snapshot (see [`streaming`]), and
//! the `incremental` engine answers `cc`/`triangles` straight from the
//! stinger-maintained state without recomputing.
//!
//! Layering:
//!
//! ```text
//! bin/serve, bin/client
//!        │
//!   server (TCP framing)  ←  protocol (wire ⇄ Request/Content)
//!        │
//!    Service  =  GraphRegistry + Scheduler
//!                                  │
//!                               engine  →  run_bsp_slice_traced / graphct
//! ```

pub mod client;
pub mod engine;
pub mod error;
pub mod job;
pub mod protocol;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod stats;
pub mod streaming;

pub use client::Client;
pub use engine::{execute, ExecVerdict};
pub use error::ServiceError;
pub use job::{Algorithm, Engine, JobGraph, JobId, JobOutput, JobSpec, JobState, StoredCheckpoint};
pub use protocol::{parse_request, GraphSpec, Request};
pub use registry::{edge_ops, GraphEntryInfo, GraphRegistry, RegistryStats};
pub use scheduler::{JobSnapshot, Scheduler, SchedulerConfig, SchedulerStats};
pub use server::{Server, Service, ServiceConfig};
pub use stats::{LatencyBook, LatencyHistogram, LatencySummary};
pub use streaming::{batch_ops, UpdateOutcome};
