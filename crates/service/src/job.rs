//! The job model: what a client submits, what the scheduler tracks, and
//! what an interrupted run leaves behind.

use std::sync::Arc;

use xmt_bsp::algorithms::bfs::BfsState;
use xmt_bsp::{BspConfig, ResumePoint, SuperstepFrame};
use xmt_graph::{Csr, VertexId};

/// Monotonically increasing job identifier.
pub type JobId = u64;

/// Which kernel a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Connected components (paper Alg. 1; min-label flood).
    Cc,
    /// Breadth-first search (paper Alg. 2).
    Bfs,
    /// PageRank (the Pregel staple).
    Pagerank,
    /// Triangle counting (paper Alg. 3).
    Triangles,
}

impl Algorithm {
    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s {
            "cc" | "components" => Some(Algorithm::Cc),
            "bfs" => Some(Algorithm::Bfs),
            "pagerank" | "pr" => Some(Algorithm::Pagerank),
            "triangles" | "tc" => Some(Algorithm::Triangles),
            _ => None,
        }
    }

    /// The canonical wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Cc => "cc",
            Algorithm::Bfs => "bfs",
            Algorithm::Pagerank => "pagerank",
            Algorithm::Triangles => "triangles",
        }
    }
}

/// Which implementation serves the job: the simulator-faithful BSP
/// runtime (checkpointable, cancellable at superstep boundaries, charges
/// the XMT cost model), the native BSP runtime (same programs and
/// checkpoints, guided host-thread scheduling, wall-clock oriented), or
/// the shared-memory GraphCT kernels (run to completion once started).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The vertex-centric BSP runtime on the simulator-faithful
    /// executor (wire names `bsp` and `sim`).
    Bsp,
    /// The same BSP runtime on the native executor: guided chunk
    /// scheduling tuned for skewed degree distributions, no model
    /// charging (wire name `native`).
    Native,
    /// The shared-memory GraphCT-style kernels.
    GraphCt,
    /// Incrementally maintained answers on a dynamic graph: the result
    /// is captured at admission from the stinger-maintained state (the
    /// job runs zero supersteps).  Valid only for `cc`/`triangles` on a
    /// graph registered with `dynamic: true`.
    Incremental,
}

impl Engine {
    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "bsp" | "sim" => Some(Engine::Bsp),
            "native" => Some(Engine::Native),
            "graphct" | "shared" => Some(Engine::GraphCt),
            "incremental" | "inc" => Some(Engine::Incremental),
            _ => None,
        }
    }

    /// The canonical wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Bsp => "bsp",
            Engine::Native => "native",
            Engine::GraphCt => "graphct",
            Engine::Incremental => "incremental",
        }
    }
}

/// A validated, ready-to-run job description (the protocol layer turns a
/// wire `JobRequest` into one of these).
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Kernel to run.
    pub algorithm: Algorithm,
    /// Implementation to run it on.
    pub engine: Engine,
    /// Registry name of the target graph.
    pub graph: String,
    /// BFS/SSSP source vertex.
    pub source: VertexId,
    /// PageRank damping factor.
    pub damping: f64,
    /// PageRank convergence tolerance.
    pub tolerance: f64,
    /// Full BSP runtime configuration (carried over the wire).
    pub config: BspConfig,
    /// Scheduling priority: higher runs first; FIFO within a level.
    pub priority: u8,
    /// Wall-clock budget from submission; on expiry the run is cut at
    /// the next superstep boundary and checkpointed.
    pub deadline_ms: Option<u64>,
}

/// Job lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// On a worker.
    Running,
    /// Finished; the result is available.
    Completed,
    /// The engine errored (bad checkpoint, panic...).
    Failed,
    /// Cancelled by request; a checkpoint is stored if it was mid-run.
    Cancelled,
    /// The deadline expired; a checkpoint is stored if it was mid-run.
    TimedOut,
    /// `max_supersteps` cut the run; the checkpoint is stored.
    Interrupted,
}

impl JobState {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
            JobState::Interrupted => "interrupted",
        }
    }

    /// Whether the job will make no further progress on its own.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// A completed job's output.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutput {
    /// Per-vertex component labels (`cc`).
    Labels(Vec<VertexId>),
    /// Distances and BFS-tree parents (`bfs`).
    Bfs {
        /// Hop counts (`u64::MAX` = unreachable).
        dist: Vec<u64>,
        /// Tree parents (`NO_VERTEX` = unreachable).
        parent: Vec<VertexId>,
    },
    /// Per-vertex ranks (`pagerank`).
    Ranks(Vec<f64>),
    /// Global triangle count (`triangles`).
    Triangles(u64),
}

/// The graph handle a job computes against, resolved at admission.
///
/// For a static registration this is just the registry's `Arc<Csr>`
/// (epoch 0).  For a dynamic graph it is an immutable *snapshot* of a
/// specific epoch: update batches landing after admission create new
/// epochs and never touch this CSR, so the job — across deadline cuts,
/// checkpoints and resumes, which all travel this same handle — observes
/// exactly the graph that existed when it was admitted.
#[derive(Clone, Debug)]
pub struct JobGraph {
    /// The immutable CSR the engines execute against.
    pub csr: Arc<Csr>,
    /// The snapshot epoch the CSR materializes (0 for static graphs).
    pub epoch: u64,
    /// For the `incremental` engine: the answer captured atomically at
    /// admission from the stinger-maintained state.  The worker returns
    /// it as the job output without invoking an engine.
    pub precomputed: Option<JobOutput>,
}

impl From<Arc<Csr>> for JobGraph {
    fn from(csr: Arc<Csr>) -> Self {
        JobGraph {
            csr,
            epoch: 0,
            precomputed: None,
        }
    }
}

/// The typed per-algorithm checkpoint an interrupted BSP job leaves
/// behind: the partial vertex states plus the runtime's [`ResumePoint`].
/// A follow-up `resume` request turns it back into a job that continues
/// the computation exactly.
#[derive(Clone, Debug)]
pub enum StoredCheckpoint {
    /// Interrupted connected components.
    Cc(Vec<VertexId>, ResumePoint<VertexId>),
    /// Interrupted BFS (message = (distance, sender)).
    Bfs(Vec<BfsState>, ResumePoint<(u64, VertexId)>),
    /// Interrupted PageRank.
    Pagerank(Vec<f64>, ResumePoint<f64>),
    /// Interrupted triangle counting (message = wedge originator id).
    Triangles(Vec<u64>, ResumePoint<VertexId>),
}

impl StoredCheckpoint {
    /// The algorithm this checkpoint belongs to (a resume job must
    /// match).
    pub fn algorithm(&self) -> Algorithm {
        match self {
            StoredCheckpoint::Cc(..) => Algorithm::Cc,
            StoredCheckpoint::Bfs(..) => Algorithm::Bfs,
            StoredCheckpoint::Pagerank(..) => Algorithm::Pagerank,
            StoredCheckpoint::Triangles(..) => Algorithm::Triangles,
        }
    }

    /// The superstep the resumed run would execute next.
    pub fn superstep(&self) -> u64 {
        match self {
            StoredCheckpoint::Cc(_, r) => r.superstep,
            StoredCheckpoint::Bfs(_, r) => r.superstep,
            StoredCheckpoint::Pagerank(_, r) => r.superstep,
            StoredCheckpoint::Triangles(_, r) => r.superstep,
        }
    }
}

/// The typed per-algorithm [`SuperstepFrame`] an interrupted BSP job
/// hands back alongside its checkpoint.  Unlike the checkpoint it is
/// pure capacity — buckets, inbox pair, scratch pools — with no
/// algorithmic state, so a resume that reuses it produces bit-identical
/// results while skipping the warm-up allocations an interrupted run
/// already paid for.  Dropping it (or resuming with `None`) is always
/// correct, just slower on the first resumed superstep.
#[derive(Debug)]
pub enum StoredFrame {
    /// Frame from an interrupted connected-components run.
    Cc(SuperstepFrame<VertexId, VertexId>),
    /// Frame from an interrupted BFS run.
    Bfs(SuperstepFrame<BfsState, (u64, VertexId)>),
    /// Frame from an interrupted PageRank run.
    Pagerank(SuperstepFrame<f64, f64>),
    /// Frame from an interrupted triangle-counting run.
    Triangles(SuperstepFrame<u64, VertexId>),
}

impl StoredFrame {
    /// The algorithm whose run shaped this frame.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            StoredFrame::Cc(_) => Algorithm::Cc,
            StoredFrame::Bfs(_) => Algorithm::Bfs,
            StoredFrame::Pagerank(_) => Algorithm::Pagerank,
            StoredFrame::Triangles(_) => Algorithm::Triangles,
        }
    }
}
