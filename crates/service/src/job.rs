//! The job model: what a client submits, what the scheduler tracks, and
//! what an interrupted run leaves behind.

use xmt_bsp::algorithms::bfs::BfsState;
use xmt_bsp::{BspConfig, ResumePoint, SuperstepFrame};
use xmt_graph::VertexId;

/// Monotonically increasing job identifier.
pub type JobId = u64;

/// Which kernel a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Connected components (paper Alg. 1; min-label flood).
    Cc,
    /// Breadth-first search (paper Alg. 2).
    Bfs,
    /// PageRank (the Pregel staple).
    Pagerank,
}

impl Algorithm {
    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s {
            "cc" | "components" => Some(Algorithm::Cc),
            "bfs" => Some(Algorithm::Bfs),
            "pagerank" | "pr" => Some(Algorithm::Pagerank),
            _ => None,
        }
    }

    /// The canonical wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Cc => "cc",
            Algorithm::Bfs => "bfs",
            Algorithm::Pagerank => "pagerank",
        }
    }
}

/// Which implementation serves the job: the simulator-faithful BSP
/// runtime (checkpointable, cancellable at superstep boundaries, charges
/// the XMT cost model), the native BSP runtime (same programs and
/// checkpoints, guided host-thread scheduling, wall-clock oriented), or
/// the shared-memory GraphCT kernels (run to completion once started).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The vertex-centric BSP runtime on the simulator-faithful
    /// executor (wire names `bsp` and `sim`).
    Bsp,
    /// The same BSP runtime on the native executor: guided chunk
    /// scheduling tuned for skewed degree distributions, no model
    /// charging (wire name `native`).
    Native,
    /// The shared-memory GraphCT-style kernels.
    GraphCt,
}

impl Engine {
    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "bsp" | "sim" => Some(Engine::Bsp),
            "native" => Some(Engine::Native),
            "graphct" | "shared" => Some(Engine::GraphCt),
            _ => None,
        }
    }

    /// The canonical wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Bsp => "bsp",
            Engine::Native => "native",
            Engine::GraphCt => "graphct",
        }
    }
}

/// A validated, ready-to-run job description (the protocol layer turns a
/// wire `JobRequest` into one of these).
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Kernel to run.
    pub algorithm: Algorithm,
    /// Implementation to run it on.
    pub engine: Engine,
    /// Registry name of the target graph.
    pub graph: String,
    /// BFS/SSSP source vertex.
    pub source: VertexId,
    /// PageRank damping factor.
    pub damping: f64,
    /// PageRank convergence tolerance.
    pub tolerance: f64,
    /// Full BSP runtime configuration (carried over the wire).
    pub config: BspConfig,
    /// Scheduling priority: higher runs first; FIFO within a level.
    pub priority: u8,
    /// Wall-clock budget from submission; on expiry the run is cut at
    /// the next superstep boundary and checkpointed.
    pub deadline_ms: Option<u64>,
}

/// Job lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// On a worker.
    Running,
    /// Finished; the result is available.
    Completed,
    /// The engine errored (bad checkpoint, panic...).
    Failed,
    /// Cancelled by request; a checkpoint is stored if it was mid-run.
    Cancelled,
    /// The deadline expired; a checkpoint is stored if it was mid-run.
    TimedOut,
    /// `max_supersteps` cut the run; the checkpoint is stored.
    Interrupted,
}

impl JobState {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
            JobState::Interrupted => "interrupted",
        }
    }

    /// Whether the job will make no further progress on its own.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// A completed job's output.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutput {
    /// Per-vertex component labels (`cc`).
    Labels(Vec<VertexId>),
    /// Distances and BFS-tree parents (`bfs`).
    Bfs {
        /// Hop counts (`u64::MAX` = unreachable).
        dist: Vec<u64>,
        /// Tree parents (`NO_VERTEX` = unreachable).
        parent: Vec<VertexId>,
    },
    /// Per-vertex ranks (`pagerank`).
    Ranks(Vec<f64>),
}

/// The typed per-algorithm checkpoint an interrupted BSP job leaves
/// behind: the partial vertex states plus the runtime's [`ResumePoint`].
/// A follow-up `resume` request turns it back into a job that continues
/// the computation exactly.
#[derive(Clone, Debug)]
pub enum StoredCheckpoint {
    /// Interrupted connected components.
    Cc(Vec<VertexId>, ResumePoint<VertexId>),
    /// Interrupted BFS (message = (distance, sender)).
    Bfs(Vec<BfsState>, ResumePoint<(u64, VertexId)>),
    /// Interrupted PageRank.
    Pagerank(Vec<f64>, ResumePoint<f64>),
}

impl StoredCheckpoint {
    /// The algorithm this checkpoint belongs to (a resume job must
    /// match).
    pub fn algorithm(&self) -> Algorithm {
        match self {
            StoredCheckpoint::Cc(..) => Algorithm::Cc,
            StoredCheckpoint::Bfs(..) => Algorithm::Bfs,
            StoredCheckpoint::Pagerank(..) => Algorithm::Pagerank,
        }
    }

    /// The superstep the resumed run would execute next.
    pub fn superstep(&self) -> u64 {
        match self {
            StoredCheckpoint::Cc(_, r) => r.superstep,
            StoredCheckpoint::Bfs(_, r) => r.superstep,
            StoredCheckpoint::Pagerank(_, r) => r.superstep,
        }
    }
}

/// The typed per-algorithm [`SuperstepFrame`] an interrupted BSP job
/// hands back alongside its checkpoint.  Unlike the checkpoint it is
/// pure capacity — buckets, inbox pair, scratch pools — with no
/// algorithmic state, so a resume that reuses it produces bit-identical
/// results while skipping the warm-up allocations an interrupted run
/// already paid for.  Dropping it (or resuming with `None`) is always
/// correct, just slower on the first resumed superstep.
#[derive(Debug)]
pub enum StoredFrame {
    /// Frame from an interrupted connected-components run.
    Cc(SuperstepFrame<VertexId, VertexId>),
    /// Frame from an interrupted BFS run.
    Bfs(SuperstepFrame<BfsState, (u64, VertexId)>),
    /// Frame from an interrupted PageRank run.
    Pagerank(SuperstepFrame<f64, f64>),
}

impl StoredFrame {
    /// The algorithm whose run shaped this frame.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            StoredFrame::Cc(_) => Algorithm::Cc,
            StoredFrame::Bfs(_) => Algorithm::Bfs,
            StoredFrame::Pagerank(_) => Algorithm::Pagerank,
        }
    }
}
