//! The graph registry: load once, serve many queries.
//!
//! The surveyed distributed graph systems (Ammar & Özsu) are all
//! long-lived services precisely because graph ingest dwarfs most single
//! queries; the registry is the piece that amortizes it.  Graphs live as
//! named [`Arc<Csr>`] entries under a byte budget with LRU eviction:
//! registering past the budget evicts the least-recently-*used* entries
//! (a `get` is a use) until the newcomer fits.  Eviction only drops the
//! registry's reference — jobs already holding the `Arc` keep computing
//! on the evicted graph safely; the memory is reclaimed when the last
//! job finishes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use xmt_graph::Csr;

use crate::error::ServiceError;

/// A registry snapshot row (what `list_graphs` reports).
#[derive(Clone, Debug)]
pub struct GraphEntryInfo {
    /// Registry name.
    pub name: String,
    /// Vertex count.
    pub vertices: u64,
    /// Undirected edge count.
    pub edges: u64,
    /// CSR footprint in bytes (what the budget is charged).
    pub bytes: u64,
}

/// A coherent registry-counter snapshot for the `stats` request.
///
/// Taken under one lock acquisition: `used_bytes` can never exceed what
/// `graphs` entries account for, and `evictions` can never lag an
/// eviction whose freed bytes are already reflected in `used_bytes` —
/// guarantees three separate getter calls cannot make.
#[derive(Clone, Copy, Debug)]
pub struct RegistryStats {
    /// Registered graph count.
    pub graphs: usize,
    /// Bytes currently charged against the budget.
    pub used_bytes: usize,
    /// Configured budget in bytes (0 = unbounded).
    pub budget_bytes: usize,
    /// Entries evicted by the budget since startup.
    pub evictions: u64,
}

struct Entry {
    graph: Arc<Csr>,
    bytes: usize,
    /// Logical access clock value at the last `get`/registration;
    /// smallest value = least recently used.
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    used: usize,
    clock: u64,
    evictions: u64,
}

/// Named `Arc<Csr>` entries under a memory budget with LRU eviction.
pub struct GraphRegistry {
    /// Budget in bytes; `0` means unbounded.
    budget: usize,
    inner: Mutex<Inner>,
}

impl GraphRegistry {
    /// A registry holding at most `budget_bytes` of CSR data (0 =
    /// unbounded).
    pub fn new(budget_bytes: usize) -> Self {
        GraphRegistry {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                used: 0,
                clock: 0,
                evictions: 0,
            }),
        }
    }

    /// The configured budget in bytes (0 = unbounded).
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Register `graph` under `name`, evicting LRU entries as needed.
    /// Re-registering a name replaces the old graph.  Fails with
    /// [`ServiceError::GraphTooLarge`] if the graph alone exceeds the
    /// budget.
    pub fn register(&self, name: &str, graph: Csr) -> Result<GraphEntryInfo, ServiceError> {
        let bytes = graph.memory_bytes();
        if self.budget > 0 && bytes > self.budget {
            return Err(ServiceError::GraphTooLarge {
                name: name.to_string(),
                bytes,
                budget: self.budget,
            });
        }
        let info = GraphEntryInfo {
            name: name.to_string(),
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
            bytes: bytes as u64,
        };
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(name) {
            inner.used -= old.bytes;
        }
        if self.budget > 0 {
            while inner.used + bytes > self.budget {
                let Some(victim) = inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                let Some(evicted) = inner.entries.remove(&victim) else {
                    break;
                };
                inner.used -= evicted.bytes;
                inner.evictions += 1;
            }
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.used += bytes;
        inner.entries.insert(
            name.to_string(),
            Entry {
                graph: Arc::new(graph),
                bytes,
                last_used: stamp,
            },
        );
        Ok(info)
    }

    /// Fetch a graph by name, marking it most-recently-used.
    pub fn get(&self, name: &str) -> Result<Arc<Csr>, ServiceError> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.entries.get_mut(name) {
            Some(e) => {
                e.last_used = stamp;
                Ok(Arc::clone(&e.graph))
            }
            None => Err(ServiceError::GraphNotFound {
                name: name.to_string(),
            }),
        }
    }

    /// Drop a graph from the registry (running jobs keep their `Arc`).
    /// Returns whether the name was present.
    pub fn unregister(&self, name: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.remove(name) {
            Some(e) => {
                inner.used -= e.bytes;
                true
            }
            None => false,
        }
    }

    /// All registered graphs, sorted by name.
    pub fn list(&self) -> Vec<GraphEntryInfo> {
        let inner = self.inner.lock();
        let mut out: Vec<GraphEntryInfo> = inner
            .entries
            .iter()
            .map(|(name, e)| GraphEntryInfo {
                name: name.clone(),
                vertices: e.graph.num_vertices(),
                edges: e.graph.num_edges(),
                bytes: e.bytes as u64,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used
    }

    /// Entries evicted by the budget since startup.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// All counters under a single lock acquisition, so a stats reader
    /// racing a register/evict cannot observe a torn combination.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock();
        RegistryStats {
            graphs: inner.entries.len(),
            used_bytes: inner.used,
            budget_bytes: self.budget,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::{path, ring};

    fn graph(n: u64) -> Csr {
        build_undirected(&path(n))
    }

    #[test]
    fn register_get_unregister_round_trip() {
        let reg = GraphRegistry::new(0);
        let info = reg.register("p", graph(10)).unwrap();
        assert_eq!(info.vertices, 10);
        assert_eq!(info.edges, 9);
        assert_eq!(reg.get("p").unwrap().num_vertices(), 10);
        assert_eq!(
            reg.get("q").unwrap_err(),
            ServiceError::GraphNotFound { name: "q".into() }
        );
        assert!(reg.unregister("p"));
        assert!(!reg.unregister("p"));
        assert_eq!(reg.used_bytes(), 0);
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let unit = graph(100).memory_bytes();
        // Room for two graphs of 100 vertices, not three.
        let reg = GraphRegistry::new(2 * unit + unit / 2);
        reg.register("a", graph(100)).unwrap();
        reg.register("b", graph(100)).unwrap();
        // Touch `a` so `b` is the LRU entry.
        reg.get("a").unwrap();
        reg.register("c", graph(100)).unwrap();
        assert!(reg.get("a").is_ok());
        assert!(reg.get("c").is_ok());
        assert_eq!(
            reg.get("b").unwrap_err(),
            ServiceError::GraphNotFound { name: "b".into() }
        );
        assert_eq!(reg.evictions(), 1);
        assert!(reg.used_bytes() <= 2 * unit + unit / 2);
    }

    #[test]
    fn oversized_graph_is_rejected_outright() {
        let small = graph(4).memory_bytes();
        let reg = GraphRegistry::new(small);
        let err = reg.register("big", graph(1000)).unwrap_err();
        assert_eq!(err.code(), "graph_too_large");
        assert_eq!(reg.used_bytes(), 0);
    }

    #[test]
    fn replacing_a_name_releases_the_old_bytes() {
        let reg = GraphRegistry::new(0);
        reg.register("g", graph(1000)).unwrap();
        let big = reg.used_bytes();
        reg.register("g", build_undirected(&ring(10))).unwrap();
        assert!(reg.used_bytes() < big);
        assert_eq!(reg.get("g").unwrap().num_vertices(), 10);
    }

    #[test]
    fn stats_snapshot_is_coherent_under_churn() {
        // Regression for the torn-stats shape: the server used to read
        // used/budget/evictions via three separate lock acquisitions, so
        // a register racing the reads could yield a combination that
        // never existed (e.g. used_bytes over budget with the eviction
        // that freed it not yet counted).  `stats()` takes everything
        // under one lock; hammer it against register churn and check the
        // single-lock invariants hold in every observed snapshot.
        let unit = graph(100).memory_bytes();
        let reg = GraphRegistry::new(2 * unit + unit / 2);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..200u64 {
                    reg.register(&format!("g{}", i % 4), graph(100)).unwrap();
                }
            });
            let mut saw_entries = false;
            while !writer.is_finished() {
                let s = reg.stats();
                assert!(
                    s.used_bytes <= s.budget_bytes,
                    "snapshot shows {} used bytes over the {} budget",
                    s.used_bytes,
                    s.budget_bytes
                );
                assert!(s.graphs <= 2, "budget admits at most two graphs");
                assert_eq!(s.used_bytes, s.graphs * unit);
                saw_entries |= s.graphs > 0;
            }
            writer.join().unwrap();
            assert!(saw_entries, "reader never overlapped the churn");
        });
        let s = reg.stats();
        assert_eq!(s.used_bytes, reg.used_bytes());
        assert_eq!(s.evictions, reg.evictions());
        assert!(s.evictions > 0, "churn never evicted");
    }

    #[test]
    fn eviction_does_not_invalidate_held_arcs() {
        let unit = graph(50).memory_bytes();
        let reg = GraphRegistry::new(unit + unit / 2);
        reg.register("a", graph(50)).unwrap();
        let held = reg.get("a").unwrap();
        reg.register("b", graph(50)).unwrap(); // evicts `a`
        assert!(reg.get("a").is_err());
        // The held Arc still works.
        assert_eq!(held.num_vertices(), 50);
        assert_eq!(held.degree(0), 1);
    }
}
