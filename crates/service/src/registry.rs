//! The graph registry: load once, serve many queries — and, for dynamic
//! entries, absorb live updates.
//!
//! The surveyed distributed graph systems (Ammar & Özsu) are all
//! long-lived services precisely because graph ingest dwarfs most single
//! queries; the registry is the piece that amortizes it.  Entries come
//! in two kinds under one byte budget with LRU eviction:
//!
//! * **static** — a frozen [`Arc<Csr>`], the original shape;
//! * **dynamic** — a [`DynamicGraph`]: stinger-backed adjacency with
//!   incrementally maintained CC labels and triangle counts, mutated by
//!   `update` batches and served to jobs as immutable epoch snapshots.
//!
//! Registering past the budget evicts the least-recently-*used* entries
//! (a `get` is a use) until the newcomer fits; an update batch that
//! grows a dynamic graph **re-costs** it at its new size under the same
//! budget (evicting others if needed, rejecting the batch with a typed
//! [`ServiceError::BudgetExceeded`] if the grown graph alone cannot
//! fit).  Eviction only drops the registry's reference — jobs already
//! holding a CSR keep computing on it safely; the memory is reclaimed
//! when the last holder finishes.
//!
//! Lock ordering: the registry lock is never held while taking a
//! per-graph lock (`get`/`admit` drop it before materializing a
//! snapshot); `update` holds the per-graph lock while taking the
//! registry lock to re-cost — one direction only, so the pair cannot
//! deadlock.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use stinger_lite::{EdgeOp, StreamingAnalytics};
use xmt_graph::Csr;

use crate::error::ServiceError;
use crate::job::{Algorithm, Engine, JobGraph};
use crate::streaming::{batch_ops, dynamic_cost_bytes, DynamicGraph, UpdateOutcome};

/// A registry snapshot row (what `list_graphs` reports).
#[derive(Clone, Debug)]
pub struct GraphEntryInfo {
    /// Registry name.
    pub name: String,
    /// Vertex count.
    pub vertices: u64,
    /// Undirected edge count (for dynamic graphs: as of the last batch).
    pub edges: u64,
    /// Footprint in bytes (what the budget is charged).
    pub bytes: u64,
    /// Whether the entry accepts `update` batches.
    pub dynamic: bool,
    /// Current snapshot epoch (always 0 for static entries).
    pub epoch: u64,
}

/// A coherent registry-counter snapshot for the `stats` request.
///
/// Taken under one lock acquisition: `used_bytes` can never exceed what
/// `graphs` entries account for, `evictions` can never lag an eviction
/// whose freed bytes are already reflected in `used_bytes`, and the
/// update counters can never show a batch whose bytes are not yet
/// charged — guarantees separate getter calls cannot make.  The one
/// exception is `snapshot_epochs_live`, a lock-free gauge summed from
/// per-graph atomics (taking per-graph locks here would invert the
/// registry→graph lock order); it is freshness-bounded, not torn.
#[derive(Clone, Copy, Debug)]
pub struct RegistryStats {
    /// Registered graph count.
    pub graphs: usize,
    /// Dynamic (updatable) entries among them.
    pub dynamic_graphs: usize,
    /// Bytes currently charged against the budget.
    pub used_bytes: usize,
    /// Configured budget in bytes (0 = unbounded).
    pub budget_bytes: usize,
    /// Entries evicted by the budget since startup.
    pub evictions: u64,
    /// Update batches applied across all dynamic graphs since startup.
    pub batches_applied: u64,
    /// Edges inserted by those batches.
    pub edges_inserted: u64,
    /// Edges deleted by those batches.
    pub edges_deleted: u64,
    /// Snapshot epochs still referenced by at least one job, summed over
    /// dynamic graphs (as of each graph's last snapshot/update).
    pub snapshot_epochs_live: u64,
}

#[derive(Clone)]
enum GraphKind {
    Static(Arc<Csr>),
    Dynamic(Arc<DynamicGraph>),
}

struct Entry {
    kind: GraphKind,
    bytes: usize,
    /// Cached shape for lock-order-safe `list`/`stats` (a dynamic
    /// graph's true counts live behind its own lock; these are updated
    /// under the registry lock by every re-cost).
    vertices: u64,
    edges: u64,
    epoch: u64,
    /// Logical access clock value at the last `get`/registration;
    /// smallest value = least recently used.
    last_used: u64,
}

impl Entry {
    fn info(&self, name: &str) -> GraphEntryInfo {
        GraphEntryInfo {
            name: name.to_string(),
            vertices: self.vertices,
            edges: self.edges,
            bytes: self.bytes as u64,
            dynamic: matches!(self.kind, GraphKind::Dynamic(_)),
            epoch: self.epoch,
        }
    }
}

struct Inner {
    entries: HashMap<String, Entry>,
    used: usize,
    clock: u64,
    evictions: u64,
    batches_applied: u64,
    edges_inserted: u64,
    edges_deleted: u64,
}

impl Inner {
    /// Evict LRU entries (excluding `keep`) until `needed` extra bytes
    /// fit under `budget`.  Returns whether the space was found.
    fn evict_to_fit(&mut self, budget: usize, needed: usize, keep: Option<&str>) -> bool {
        while self.used + needed > budget {
            let Some(victim) = self
                .entries
                .iter()
                .filter(|(k, _)| keep != Some(k.as_str()))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                return false;
            };
            let Some(evicted) = self.entries.remove(&victim) else {
                return false;
            };
            self.used -= evicted.bytes;
            self.evictions += 1;
        }
        true
    }
}

/// Named graph entries (static CSRs and dynamic streaming graphs) under
/// a memory budget with LRU eviction.
pub struct GraphRegistry {
    /// Budget in bytes; `0` means unbounded.
    budget: usize,
    inner: Mutex<Inner>,
}

impl GraphRegistry {
    /// A registry holding at most `budget_bytes` of graph data (0 =
    /// unbounded).
    pub fn new(budget_bytes: usize) -> Self {
        GraphRegistry {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                used: 0,
                clock: 0,
                evictions: 0,
                batches_applied: 0,
                edges_inserted: 0,
                edges_deleted: 0,
            }),
        }
    }

    /// The configured budget in bytes (0 = unbounded).
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Register `graph` as a frozen (static) entry under `name`,
    /// evicting LRU entries as needed.  Re-registering a name replaces
    /// the old graph.  Fails with [`ServiceError::GraphTooLarge`] if the
    /// graph alone exceeds the budget.
    pub fn register(&self, name: &str, graph: Csr) -> Result<GraphEntryInfo, ServiceError> {
        let bytes = graph.memory_bytes();
        let vertices = graph.num_vertices();
        let edges = graph.num_edges();
        self.insert(
            name,
            GraphKind::Static(Arc::new(graph)),
            bytes,
            vertices,
            edges,
        )
    }

    /// Register `graph` as a dynamic (streaming) entry under `name`: the
    /// CSR seeds a stinger-backed adjacency whose CC labels and triangle
    /// counts are maintained incrementally by `update` batches.  The
    /// budget charge covers the analytics state plus one epoch snapshot,
    /// and is re-assessed by every batch.
    pub fn register_dynamic(&self, name: &str, graph: Csr) -> Result<GraphEntryInfo, ServiceError> {
        let vertices = graph.num_vertices();
        let edges = graph.num_edges();
        let bytes = dynamic_cost_bytes(vertices, edges);
        let analytics = StreamingAnalytics::from_csr(&graph);
        let kind = GraphKind::Dynamic(Arc::new(DynamicGraph::new(analytics)));
        self.insert(name, kind, bytes, vertices, edges)
    }

    fn insert(
        &self,
        name: &str,
        kind: GraphKind,
        bytes: usize,
        vertices: u64,
        edges: u64,
    ) -> Result<GraphEntryInfo, ServiceError> {
        if self.budget > 0 && bytes > self.budget {
            return Err(ServiceError::GraphTooLarge {
                name: name.to_string(),
                bytes,
                budget: self.budget,
            });
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(name) {
            inner.used -= old.bytes;
        }
        if self.budget > 0 {
            // Fits by the check above once everything else is evictable.
            inner.evict_to_fit(self.budget, bytes, None);
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.used += bytes;
        let entry = Entry {
            kind,
            bytes,
            vertices,
            edges,
            epoch: 0,
            last_used: stamp,
        };
        let info = entry.info(name);
        inner.entries.insert(name.to_string(), entry);
        Ok(info)
    }

    /// Look up an entry's kind by name, marking it most-recently-used.
    /// Registry lock only — snapshot materialization happens after it is
    /// released.
    fn lookup(&self, name: &str) -> Result<GraphKind, ServiceError> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.entries.get_mut(name) {
            Some(e) => {
                e.last_used = stamp;
                Ok(e.kind.clone())
            }
            None => Err(ServiceError::GraphNotFound {
                name: name.to_string(),
            }),
        }
    }

    /// Fetch a graph's current CSR by name, marking it most-recently-
    /// used.  For dynamic graphs this is the current epoch's snapshot.
    pub fn get(&self, name: &str) -> Result<Arc<Csr>, ServiceError> {
        match self.lookup(name)? {
            GraphKind::Static(csr) => Ok(csr),
            GraphKind::Dynamic(d) => Ok(d.snapshot().0),
        }
    }

    /// Resolve a job's graph handle at admission: the CSR it will
    /// compute against, the epoch that CSR materializes, and — for the
    /// incremental engine — the answer captured atomically with it.
    pub fn admit(
        &self,
        name: &str,
        algorithm: Algorithm,
        engine: Engine,
    ) -> Result<JobGraph, ServiceError> {
        match self.lookup(name)? {
            GraphKind::Static(csr) => {
                if engine == Engine::Incremental {
                    return Err(ServiceError::NotDynamic {
                        name: name.to_string(),
                    });
                }
                Ok(JobGraph {
                    csr,
                    epoch: 0,
                    precomputed: None,
                })
            }
            GraphKind::Dynamic(d) => {
                if engine == Engine::Incremental {
                    let (csr, epoch, output) = d.incremental(name, algorithm)?;
                    Ok(JobGraph {
                        csr,
                        epoch,
                        precomputed: Some(output),
                    })
                } else {
                    let (csr, epoch) = d.snapshot();
                    Ok(JobGraph {
                        csr,
                        epoch,
                        precomputed: None,
                    })
                }
            }
        }
    }

    /// Apply an edge insert/delete batch to a dynamic graph.
    ///
    /// The batch is planned first (endpoint validation, exact accepted
    /// counts) without mutating anything; the entry is then re-costed at
    /// its post-batch size under the budget — evicting *other* LRU
    /// entries if the growth needs room, rejecting with
    /// [`ServiceError::BudgetExceeded`] if the grown graph alone cannot
    /// fit — and only then is the batch applied.  A rejected batch
    /// leaves the graph, its analytics and its byte charge untouched.
    pub fn update(
        &self,
        name: &str,
        insert: &[(u64, u64)],
        delete: &[(u64, u64)],
    ) -> Result<UpdateOutcome, ServiceError> {
        let dynamic = match self.lookup(name)? {
            GraphKind::Dynamic(d) => d,
            GraphKind::Static(_) => {
                return Err(ServiceError::NotDynamic {
                    name: name.to_string(),
                })
            }
        };
        let ops = batch_ops(insert, delete);
        // Per-graph lock held across plan → re-cost → apply, so the
        // accepted counts the re-cost was based on are exactly the
        // counts applied, and concurrent batches serialize per graph.
        let mut st = dynamic.lock();
        let plan = st
            .analytics
            // lint:allow(guard-across-call): planning is bounded CPU work
            // on the guarded state itself; the per-graph lock must cover
            // plan -> re-cost -> apply (see the comment above).
            .plan_batch(&ops)
            .map_err(|e| ServiceError::BadRequest {
                message: format!("update for graph `{name}`: {e}"),
            })?;
        let n = st.analytics.graph().num_vertices();
        let edges_after = st.analytics.graph().num_edges() + plan.inserted - plan.deleted;
        let new_bytes = dynamic_cost_bytes(n, edges_after);
        let epoch_after = if plan.inserted + plan.deleted > 0 {
            st.epoch + 1
        } else {
            st.epoch
        };
        self.recost(
            name,
            new_bytes,
            plan.inserted,
            plan.deleted,
            edges_after,
            epoch_after,
        )?;
        let sw = xmt_trace::Stopwatch::start();
        let applied = st
            .analytics
            .apply_batch(&ops)
            .map_err(|e| ServiceError::Internal {
                message: format!("planned batch failed to apply on `{name}`: {e}"),
            })?;
        debug_assert_eq!(applied, plan, "plan/apply divergence on `{name}`");
        let apply_ns = sw.elapsed_ns();
        Ok(dynamic.commit_batch(&mut st, applied, new_bytes as u64, apply_ns))
    }

    /// Re-charge a dynamic entry at `new_bytes` (called with the
    /// per-graph lock held; takes the registry lock — the permitted
    /// nesting direction).  Updates the cached shape and the global
    /// update counters in the same critical section, so a `stats` reader
    /// can never observe a batch counted without its bytes charged.
    fn recost(
        &self,
        name: &str,
        new_bytes: usize,
        inserted: u64,
        deleted: u64,
        edges_after: u64,
        epoch_after: u64,
    ) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock();
        let old_bytes = match inner.entries.get(name) {
            Some(e) => e.bytes,
            // Concurrently unregistered/evicted: the graph object still
            // works for whoever holds it, but there is no entry to
            // charge, so the batch is refused.
            None => {
                return Err(ServiceError::GraphNotFound {
                    name: name.to_string(),
                })
            }
        };
        if self.budget > 0 {
            if new_bytes > self.budget {
                return Err(ServiceError::BudgetExceeded {
                    name: name.to_string(),
                    bytes: new_bytes,
                    budget: self.budget,
                });
            }
            // Release our old charge for the fit check, then evict
            // other entries until the new size fits.  `new_bytes <=
            // budget` above guarantees termination once only `name`
            // remains.
            inner.used -= old_bytes;
            let fits = inner.evict_to_fit(self.budget, new_bytes, Some(name));
            if !fits {
                // Cannot happen given the check above, but never leave
                // the accounting half-moved.
                inner.used += old_bytes;
                return Err(ServiceError::BudgetExceeded {
                    name: name.to_string(),
                    bytes: new_bytes,
                    budget: self.budget,
                });
            }
            inner.used += new_bytes;
        } else {
            inner.used = inner.used - old_bytes + new_bytes;
        }
        if let Some(e) = inner.entries.get_mut(name) {
            e.bytes = new_bytes;
            e.edges = edges_after;
            e.epoch = epoch_after;
        }
        inner.batches_applied += 1;
        inner.edges_inserted += inserted;
        inner.edges_deleted += deleted;
        Ok(())
    }

    /// A dynamic graph's recent applied-batch trace records.
    pub fn update_trace(&self, name: &str) -> Result<xmt_trace::UpdateTrace, ServiceError> {
        match self.lookup(name)? {
            GraphKind::Dynamic(d) => Ok(d.update_trace(name)),
            GraphKind::Static(_) => Err(ServiceError::NotDynamic {
                name: name.to_string(),
            }),
        }
    }

    /// Drop a graph from the registry (running jobs keep their `Arc`).
    /// Returns whether the name was present.
    pub fn unregister(&self, name: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.remove(name) {
            Some(e) => {
                inner.used -= e.bytes;
                true
            }
            None => false,
        }
    }

    /// All registered graphs, sorted by name.
    pub fn list(&self) -> Vec<GraphEntryInfo> {
        let inner = self.inner.lock();
        let mut out: Vec<GraphEntryInfo> =
            inner.entries.iter().map(|(name, e)| e.info(name)).collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used
    }

    /// Entries evicted by the budget since startup.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// All counters under a single lock acquisition, so a stats reader
    /// racing a register/update/evict cannot observe a torn combination.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock();
        let mut dynamic_graphs = 0;
        let mut snapshot_epochs_live = 0;
        for e in inner.entries.values() {
            if let GraphKind::Dynamic(d) = &e.kind {
                dynamic_graphs += 1;
                // Atomic gauge read; per-graph locks are off-limits here
                // (registry→graph nesting is the forbidden direction).
                snapshot_epochs_live += d.live_epochs();
            }
        }
        RegistryStats {
            graphs: inner.entries.len(),
            dynamic_graphs,
            used_bytes: inner.used,
            budget_bytes: self.budget,
            evictions: inner.evictions,
            batches_applied: inner.batches_applied,
            edges_inserted: inner.edges_inserted,
            edges_deleted: inner.edges_deleted,
            snapshot_epochs_live,
        }
    }
}

/// Convenience for composing update batches in code (tests, benches):
/// the wire shape is two pair lists, this is the typed equivalent.
pub fn edge_ops(insert: &[(u64, u64)], delete: &[(u64, u64)]) -> Vec<EdgeOp> {
    batch_ops(insert, delete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOutput;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::{path, ring};

    fn graph(n: u64) -> Csr {
        build_undirected(&path(n))
    }

    #[test]
    fn register_get_unregister_round_trip() {
        let reg = GraphRegistry::new(0);
        let info = reg.register("p", graph(10)).unwrap();
        assert_eq!(info.vertices, 10);
        assert_eq!(info.edges, 9);
        assert!(!info.dynamic);
        assert_eq!(reg.get("p").unwrap().num_vertices(), 10);
        assert_eq!(
            reg.get("q").unwrap_err(),
            ServiceError::GraphNotFound { name: "q".into() }
        );
        assert!(reg.unregister("p"));
        assert!(!reg.unregister("p"));
        assert_eq!(reg.used_bytes(), 0);
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let unit = graph(100).memory_bytes();
        // Room for two graphs of 100 vertices, not three.
        let reg = GraphRegistry::new(2 * unit + unit / 2);
        reg.register("a", graph(100)).unwrap();
        reg.register("b", graph(100)).unwrap();
        // Touch `a` so `b` is the LRU entry.
        reg.get("a").unwrap();
        reg.register("c", graph(100)).unwrap();
        assert!(reg.get("a").is_ok());
        assert!(reg.get("c").is_ok());
        assert_eq!(
            reg.get("b").unwrap_err(),
            ServiceError::GraphNotFound { name: "b".into() }
        );
        assert_eq!(reg.evictions(), 1);
        assert!(reg.used_bytes() <= 2 * unit + unit / 2);
    }

    #[test]
    fn oversized_graph_is_rejected_outright() {
        let small = graph(4).memory_bytes();
        let reg = GraphRegistry::new(small);
        let err = reg.register("big", graph(1000)).unwrap_err();
        assert_eq!(err.code(), "graph_too_large");
        assert_eq!(reg.used_bytes(), 0);
    }

    #[test]
    fn replacing_a_name_releases_the_old_bytes() {
        let reg = GraphRegistry::new(0);
        reg.register("g", graph(1000)).unwrap();
        let big = reg.used_bytes();
        reg.register("g", build_undirected(&ring(10))).unwrap();
        assert!(reg.used_bytes() < big);
        assert_eq!(reg.get("g").unwrap().num_vertices(), 10);
    }

    #[test]
    fn stats_snapshot_is_coherent_under_churn() {
        // Regression for the torn-stats shape: the server used to read
        // used/budget/evictions via three separate lock acquisitions, so
        // a register racing the reads could yield a combination that
        // never existed (e.g. used_bytes over budget with the eviction
        // that freed it not yet counted).  `stats()` takes everything
        // under one lock; hammer it against register churn and check the
        // single-lock invariants hold in every observed snapshot.
        let unit = graph(100).memory_bytes();
        let reg = GraphRegistry::new(2 * unit + unit / 2);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..200u64 {
                    reg.register(&format!("g{}", i % 4), graph(100)).unwrap();
                }
            });
            let mut saw_entries = false;
            while !writer.is_finished() {
                let s = reg.stats();
                assert!(
                    s.used_bytes <= s.budget_bytes,
                    "snapshot shows {} used bytes over the {} budget",
                    s.used_bytes,
                    s.budget_bytes
                );
                assert!(s.graphs <= 2, "budget admits at most two graphs");
                assert_eq!(s.used_bytes, s.graphs * unit);
                saw_entries |= s.graphs > 0;
            }
            writer.join().unwrap();
            assert!(saw_entries, "reader never overlapped the churn");
        });
        let s = reg.stats();
        assert_eq!(s.used_bytes, reg.used_bytes());
        assert_eq!(s.evictions, reg.evictions());
        assert!(s.evictions > 0, "churn never evicted");
    }

    #[test]
    fn eviction_does_not_invalidate_held_arcs() {
        let unit = graph(50).memory_bytes();
        let reg = GraphRegistry::new(unit + unit / 2);
        reg.register("a", graph(50)).unwrap();
        let held = reg.get("a").unwrap();
        reg.register("b", graph(50)).unwrap(); // evicts `a`
        assert!(reg.get("a").is_err());
        // The held Arc still works.
        assert_eq!(held.num_vertices(), 50);
        assert_eq!(held.degree(0), 1);
    }

    #[test]
    fn updates_flow_through_a_dynamic_entry() {
        let reg = GraphRegistry::new(0);
        let info = reg.register_dynamic("d", graph(6)).unwrap();
        assert!(info.dynamic);
        assert_eq!(info.epoch, 0);
        assert_eq!(info.edges, 5);

        let out = reg.update("d", &[(0, 2), (0, 3)], &[(4, 5)]).unwrap();
        assert_eq!(out.inserted, 2);
        assert_eq!(out.deleted, 1);
        assert_eq!(out.epoch, 1);
        assert_eq!(out.edges, 6);

        // list() reflects the re-costed shape without touching the
        // per-graph lock.
        let row = &reg.list()[0];
        assert_eq!(row.edges, 6);
        assert_eq!(row.epoch, 1);
        assert_eq!(row.bytes, out.bytes);
        assert_eq!(reg.used_bytes() as u64, out.bytes);

        let s = reg.stats();
        assert_eq!(s.dynamic_graphs, 1);
        assert_eq!(s.batches_applied, 1);
        assert_eq!(s.edges_inserted, 2);
        assert_eq!(s.edges_deleted, 1);
    }

    #[test]
    fn update_on_static_entry_is_typed_not_dynamic() {
        let reg = GraphRegistry::new(0);
        reg.register("s", graph(4)).unwrap();
        let err = reg.update("s", &[(0, 2)], &[]).unwrap_err();
        assert_eq!(err.code(), "not_dynamic");
        assert!(matches!(
            reg.update_trace("s").unwrap_err(),
            ServiceError::NotDynamic { .. }
        ));
    }

    #[test]
    fn out_of_range_batch_is_bad_request_and_applies_nothing() {
        let reg = GraphRegistry::new(0);
        reg.register_dynamic("d", graph(4)).unwrap();
        let err = reg.update("d", &[(0, 2), (1, 99)], &[]).unwrap_err();
        assert_eq!(err.code(), "bad_request");
        let row = &reg.list()[0];
        assert_eq!(row.edges, 3, "rejected batch mutated the graph");
        assert_eq!(reg.stats().batches_applied, 0);
    }

    #[test]
    fn growth_past_budget_is_rejected_with_nothing_applied() {
        // Budget sized so the seed graph fits but a densifying batch
        // does not — even with nothing else to evict.
        let n = 32u64;
        let seed_bytes = dynamic_cost_bytes(n, n - 1);
        let reg = GraphRegistry::new(seed_bytes + 64);
        reg.register_dynamic("d", graph(n)).unwrap();

        let batch: Vec<(u64, u64)> = (0..n)
            .flat_map(|u| (u + 2..n).map(move |v| (u, v)))
            .collect();
        let err = reg.update("d", &batch, &[]).unwrap_err();
        let ServiceError::BudgetExceeded {
            name,
            bytes,
            budget,
        } = err
        else {
            panic!("expected budget_exceeded, got {err:?}");
        };
        assert_eq!(name, "d");
        assert!(bytes > budget);
        // Nothing applied, nothing re-charged.
        let row = &reg.list()[0];
        assert_eq!(row.edges, n - 1);
        assert_eq!(row.epoch, 0);
        assert_eq!(reg.used_bytes(), seed_bytes);
        assert_eq!(reg.stats().batches_applied, 0);

        // A batch that fits still goes through afterwards.
        let out = reg.update("d", &[(0, 2)], &[]).unwrap();
        assert_eq!(out.inserted, 1);
    }

    #[test]
    fn grown_graph_evicts_others_and_is_evictable_at_new_size() {
        let n = 64u64;
        let dyn_seed = dynamic_cost_bytes(n, n - 1);
        let unit = graph(100).memory_bytes();
        // Room for the dynamic seed plus one static unit, with slack
        // smaller than the batch growth below.
        let reg = GraphRegistry::new(dyn_seed + unit + 8);
        reg.register_dynamic("d", graph(n)).unwrap();
        reg.register("s", graph(100)).unwrap();

        // Grow `d` by enough edges that `s` must be evicted to make
        // room (each new edge costs 32 bytes under the dynamic model).
        let batch: Vec<(u64, u64)> = (0..n - 2).map(|u| (u, u + 2)).collect();
        let out = reg.update("d", &batch, &[]).unwrap();
        assert_eq!(out.inserted, n - 2);
        assert!(
            reg.get("s").is_err(),
            "growth did not evict the LRU static entry"
        );
        assert_eq!(reg.evictions(), 1);
        assert_eq!(reg.used_bytes() as u64, out.bytes);

        // The grown entry is now LRU-evictable at its *new* size: a
        // static registration that needs the space pushes it out.
        reg.register("big", graph(100)).unwrap();
        assert!(
            reg.get("d").is_err(),
            "grown dynamic entry was not evictable at its new size"
        );
        assert_eq!(reg.used_bytes(), unit);
    }

    #[test]
    fn admit_serves_incremental_from_the_maintained_state() {
        let reg = GraphRegistry::new(0);
        reg.register_dynamic("d", graph(5)).unwrap();
        let jg = reg.admit("d", Algorithm::Cc, Engine::Incremental).unwrap();
        assert_eq!(jg.epoch, 0);
        assert_eq!(
            jg.precomputed,
            Some(JobOutput::Labels(vec![0; 5])),
            "path graph is one component"
        );

        // Disconnect vertex 4; the incremental answer tracks it.
        reg.update("d", &[], &[(3, 4)]).unwrap();
        let jg = reg.admit("d", Algorithm::Cc, Engine::Incremental).unwrap();
        assert_eq!(jg.epoch, 1);
        assert_eq!(jg.precomputed, Some(JobOutput::Labels(vec![0, 0, 0, 0, 4])));

        // Static entries refuse the incremental engine, typed.
        reg.register("s", graph(5)).unwrap();
        assert!(matches!(
            reg.admit("s", Algorithm::Cc, Engine::Incremental),
            Err(ServiceError::NotDynamic { .. })
        ));
        // Non-incremental engines on dynamic graphs get the snapshot.
        let jg = reg.admit("d", Algorithm::Cc, Engine::Bsp).unwrap();
        assert_eq!(jg.epoch, 1);
        assert!(jg.precomputed.is_none());
        assert_eq!(jg.csr.num_edges(), 3);
    }

    #[test]
    fn snapshots_isolate_jobs_from_later_batches() {
        let reg = GraphRegistry::new(0);
        reg.register_dynamic("d", graph(8)).unwrap();
        let before = reg.admit("d", Algorithm::Cc, Engine::Bsp).unwrap();
        reg.update("d", &[(0, 7)], &[]).unwrap();
        let after = reg.admit("d", Algorithm::Cc, Engine::Bsp).unwrap();
        assert_eq!(before.epoch, 0);
        assert_eq!(after.epoch, 1);
        assert_eq!(before.csr.num_edges(), 7, "pre-batch snapshot mutated");
        assert_eq!(after.csr.num_edges(), 8);
        assert!(!Arc::ptr_eq(&before.csr, &after.csr));
        assert!(reg.stats().snapshot_epochs_live >= 2);
    }

    #[test]
    fn update_trace_records_batches_in_order() {
        let reg = GraphRegistry::new(0);
        reg.register_dynamic("d", graph(6)).unwrap();
        reg.update("d", &[(0, 2)], &[]).unwrap();
        reg.update("d", &[], &[(0, 2)]).unwrap();
        let trace = reg.update_trace("d").unwrap();
        assert_eq!(trace.graph, "d");
        if xmt_trace::ENABLED {
            assert_eq!(trace.updates.len(), 2);
            assert_eq!(trace.updates[0].epoch, 1);
            assert_eq!(trace.updates[0].inserted, 1);
            assert_eq!(trace.updates[1].epoch, 2);
            assert_eq!(trace.updates[1].deleted, 1);
        } else {
            assert!(trace.updates.is_empty());
        }
    }
}
