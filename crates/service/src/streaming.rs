//! Streaming (dynamic) graph entries: epochs, snapshots, and the
//! consistency model.
//!
//! A graph registered with `dynamic: true` is backed by a
//! [`StreamingAnalytics`] (per-vertex sorted adjacency plus incremental
//! CC labels and triangle counts) instead of a frozen CSR.  The
//! subsystem's consistency model is **snapshot isolation per job**:
//!
//! * Every admitted analytics job resolves the graph name to an
//!   immutable `Arc<Csr>` materialized from the *current epoch*.  The
//!   job (and any checkpoint/resume continuation, which travels the same
//!   handle) computes against that CSR for its whole life.
//! * An `update` batch mutates only the dynamic adjacency and bumps the
//!   epoch; the previous epoch's CSR is untouched — in-flight jobs never
//!   observe a torn graph, and two jobs admitted around a batch see two
//!   well-defined epochs.
//! * Snapshots are materialized lazily and cached per epoch: a burst of
//!   submits between batches shares one CSR; the first submit after a
//!   batch pays one `to_csr`.
//!
//! Lock ordering (shared with the registry): the registry lock is never
//! held while taking a per-graph lock; a holder of the per-graph lock
//! *may* take the registry lock (that is how `update` re-costs the
//! entry's byte charge atomically with the batch).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, MutexGuard};

use stinger_lite::{BatchOutcome, EdgeOp, StreamingAnalytics};
use xmt_graph::Csr;

use crate::error::ServiceError;
use crate::job::{Algorithm, JobOutput};

/// Applied-batch records kept per graph for the `trace` op; older
/// records roll off.
const UPDATE_TRACE_WINDOW: usize = 1024;

/// What an applied `update` batch reports back to the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The epoch after the batch (unchanged if the batch was a no-op).
    pub epoch: u64,
    /// Edges actually inserted.
    pub inserted: u64,
    /// Edges actually deleted.
    pub deleted: u64,
    /// Undirected edge count after the batch.
    pub edges: u64,
    /// Registry bytes now charged for the graph.
    pub bytes: u64,
}

/// The mutable state behind one dynamic registry entry, guarded by the
/// entry's own lock so updates never serialize against other graphs.
pub(crate) struct DynState {
    pub(crate) analytics: StreamingAnalytics,
    /// Monotonic epoch counter; bumped by every batch that changes the
    /// graph.
    pub(crate) epoch: u64,
    /// The current epoch's materialized CSR, if any job has asked for it
    /// since the last mutating batch.
    snapshot: Option<Arc<Csr>>,
    /// Weak handles to every epoch snapshot handed out; pruned as jobs
    /// drop their `Arc`s.
    issued: Vec<(u64, Weak<Csr>)>,
    /// Recent applied-batch records (bounded window, newest last).
    updates: VecDeque<xmt_trace::UpdateRecord>,
}

/// A dynamic graph: streaming analytics state plus epoch bookkeeping.
// A per-graph state holder may take the registry's inner lock (batch
// re-costing), never the reverse — the ordering described in the module
// docs, machine-checked by the workspace lock-order analysis.
// lint:order: state < inner
pub(crate) struct DynamicGraph {
    state: Mutex<DynState>,
    /// Gauge of snapshot epochs still referenced by at least one holder,
    /// as of the last snapshot/update/trace on this graph.  Written
    /// under the state lock, read lock-free by `stats()` (which holds
    /// the registry lock and must not take per-graph locks — see the
    /// lock-ordering note above); it is a freshness-bounded gauge, not a
    /// torn read of multi-field state.
    live_epochs: AtomicU64,
}

impl DynamicGraph {
    pub(crate) fn new(analytics: StreamingAnalytics) -> Self {
        DynamicGraph {
            state: Mutex::new(DynState {
                analytics,
                epoch: 0,
                snapshot: None,
                issued: Vec::new(),
                updates: VecDeque::new(),
            }),
            live_epochs: AtomicU64::new(0),
        }
    }

    /// Lock the state for a compound operation (plan → re-cost → apply).
    pub(crate) fn lock(&self) -> MutexGuard<'_, DynState> {
        self.state.lock()
    }

    /// The snapshot-epochs-live gauge (see the field note for staleness
    /// semantics).
    pub(crate) fn live_epochs(&self) -> u64 {
        // Relaxed: single independent gauge, no other memory depends on
        // the read; staleness is bounded by the last refresh anyway.
        self.live_epochs.load(Ordering::Relaxed)
    }

    /// The current epoch's CSR (materializing and caching it if needed)
    /// plus the epoch number.
    pub(crate) fn snapshot(&self) -> (Arc<Csr>, u64) {
        let mut st = self.state.lock();
        self.snapshot_locked(&mut st)
    }

    /// [`snapshot`](Self::snapshot) under an already-held lock.
    pub(crate) fn snapshot_locked(&self, st: &mut DynState) -> (Arc<Csr>, u64) {
        if st.snapshot.is_none() {
            let csr = Arc::new(st.analytics.graph().to_csr());
            st.issued.push((st.epoch, Arc::downgrade(&csr)));
            st.snapshot = Some(csr);
        }
        self.refresh_gauge(st);
        let csr = match &st.snapshot {
            Some(csr) => Arc::clone(csr),
            // Unreachable: populated two lines up; avoid unwrap in lib
            // code per workspace lint.
            None => Arc::new(st.analytics.graph().to_csr()),
        };
        (csr, st.epoch)
    }

    /// Capture the incremental answer for `algorithm` plus the snapshot
    /// it is consistent with, atomically under the graph lock.
    pub(crate) fn incremental(
        &self,
        name: &str,
        algorithm: Algorithm,
    ) -> Result<(Arc<Csr>, u64, JobOutput), ServiceError> {
        let mut st = self.state.lock();
        let output = match algorithm {
            Algorithm::Cc => JobOutput::Labels(st.analytics.labels()),
            // lint:allow(guard-across-call): reading the incrementally
            // maintained labels/counts is O(V) copying, no graph work;
            // the lock keeps the read consistent with the epoch.
            Algorithm::Triangles => JobOutput::Triangles(st.analytics.triangles()),
            other => {
                return Err(ServiceError::BadRequest {
                    message: format!(
                        "the incremental engine maintains `cc` and `triangles` only; \
                         `{}` on graph `{name}` needs a bsp/native/graphct engine",
                        other.name()
                    ),
                })
            }
        };
        let (csr, epoch) = self.snapshot_locked(&mut st);
        Ok((csr, epoch, output))
    }

    /// Finish an applied batch under the held lock: bump the epoch if
    /// the graph changed, invalidate the snapshot cache, refresh the
    /// live-epoch gauge, and record the batch for the trace window.
    pub(crate) fn commit_batch(
        &self,
        st: &mut DynState,
        applied: BatchOutcome,
        bytes_after: u64,
        apply_ns: u64,
    ) -> UpdateOutcome {
        if applied.inserted + applied.deleted > 0 {
            st.epoch += 1;
            // Drop our strong ref to the superseded epoch; holders keep
            // theirs, and the weak entry in `issued` tracks them.
            st.snapshot = None;
        }
        self.refresh_gauge(st);
        let outcome = UpdateOutcome {
            epoch: st.epoch,
            inserted: applied.inserted,
            deleted: applied.deleted,
            edges: st.analytics.graph().num_edges(),
            bytes: bytes_after,
        };
        if xmt_trace::ENABLED {
            if st.updates.len() == UPDATE_TRACE_WINDOW {
                st.updates.pop_front();
            }
            st.updates.push_back(xmt_trace::UpdateRecord {
                epoch: outcome.epoch,
                inserted: outcome.inserted,
                deleted: outcome.deleted,
                edges_after: outcome.edges,
                bytes_after,
                apply_ns,
            });
        }
        outcome
    }

    /// The recent applied-batch records (newest last).
    pub(crate) fn update_trace(&self, graph: &str) -> xmt_trace::UpdateTrace {
        let mut st = self.state.lock();
        self.refresh_gauge(&mut st);
        xmt_trace::UpdateTrace {
            graph: graph.to_string(),
            updates: st.updates.iter().cloned().collect(),
        }
    }

    /// Drop issued-epoch entries whose snapshots no longer have holders
    /// and publish the count.
    fn refresh_gauge(&self, st: &mut DynState) {
        st.issued.retain(|(_, weak)| weak.strong_count() > 0);
        let live = st.issued.len() as u64;
        // Relaxed: publishing a single gauge value; see field note.
        self.live_epochs.store(live, Ordering::Relaxed);
    }
}

/// The deterministic byte cost charged against the registry budget for a
/// dynamic graph with `n` vertices and `m` undirected edges: the
/// analytics state (adjacency vectors, union-find parents, triangle
/// tallies) plus one materialized CSR snapshot.  Length-based on
/// purpose: the same topology always costs the same, so budget tests and
/// eviction decisions do not depend on allocator capacity growth or
/// whether a snapshot happens to be cached right now.
pub(crate) fn dynamic_cost_bytes(n: u64, m: u64) -> usize {
    let vec_header = std::mem::size_of::<Vec<u64>>();
    let analytics = n as usize * vec_header + 2 * m as usize * 8 + 2 * n as usize * 8;
    let csr = (n as usize + 1) * 8 + 2 * m as usize * 8;
    analytics + csr
}

/// Translate wire-level insert/delete pair lists into one ordered batch
/// (inserts first, then deletes; within the batch the first op naming an
/// unordered pair wins).
pub fn batch_ops(insert: &[(u64, u64)], delete: &[(u64, u64)]) -> Vec<EdgeOp> {
    insert
        .iter()
        .map(|&(u, v)| EdgeOp::Insert(u, v))
        .chain(delete.iter().map(|&(u, v)| EdgeOp::Delete(u, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_cached_per_epoch_and_invalidated_by_batches() {
        let d = DynamicGraph::new(StreamingAnalytics::new(8));
        let (a, e0) = d.snapshot();
        let (b, _) = d.snapshot();
        assert_eq!(e0, 0);
        assert!(Arc::ptr_eq(&a, &b), "same epoch shares one CSR");

        let ops = batch_ops(&[(0, 1)], &[]);
        let (applied, bytes) = {
            let mut st = d.lock();
            let applied = st.analytics.apply_batch(&ops).unwrap();
            let n = st.analytics.graph().num_vertices();
            let m = st.analytics.graph().num_edges();
            (applied, dynamic_cost_bytes(n, m) as u64)
        };
        let outcome = {
            let mut st = d.lock();
            d.commit_batch(&mut st, applied, bytes, 0)
        };
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.inserted, 1);

        let (c, e1) = d.snapshot();
        assert_eq!(e1, 1);
        assert!(!Arc::ptr_eq(&a, &c), "new epoch materializes a new CSR");
        assert_eq!(a.num_edges(), 0, "held snapshot still shows epoch 0");
        assert_eq!(c.num_edges(), 1);
    }

    #[test]
    fn live_epoch_gauge_tracks_holders() {
        let d = DynamicGraph::new(StreamingAnalytics::new(4));
        let (held, _) = d.snapshot();
        assert_eq!(d.live_epochs(), 1);

        // A no-change commit keeps the epoch; the held snapshot stays
        // the only live one.
        let outcome = {
            let mut st = d.lock();
            d.commit_batch(&mut st, BatchOutcome::default(), 0, 0)
        };
        assert_eq!(outcome.epoch, 0);
        assert_eq!(d.live_epochs(), 1);

        drop(held);
        let (_fresh, _) = d.snapshot(); // refreshes the gauge
        assert_eq!(d.live_epochs(), 1, "old epoch dropped, new one issued");
    }

    #[test]
    fn incremental_rejects_unsupported_algorithms() {
        let d = DynamicGraph::new(StreamingAnalytics::new(4));
        let err = d.incremental("g", Algorithm::Pagerank).unwrap_err();
        assert_eq!(err.code(), "bad_request");
        let (_, _, output) = d.incremental("g", Algorithm::Triangles).unwrap();
        assert_eq!(output, JobOutput::Triangles(0));
    }
}
