//! The graph-analytics server.
//!
//! ```text
//! serve [--addr 127.0.0.1:7177] [--workers 2] [--queue 64] [--budget-mb 0]
//! ```
//!
//! Prints `listening on <addr>` once bound (scripts parse this to learn
//! an ephemeral port), then serves newline-delimited JSON requests until
//! a `{"op":"shutdown"}` arrives.

use xmt_service::{Server, ServiceConfig};

fn main() {
    let mut addr = "127.0.0.1:7177".to_string();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--workers" => config.workers = parse(&take("--workers"), "--workers"),
            "--queue" => config.queue_capacity = parse(&take("--queue"), "--queue"),
            "--budget-mb" => {
                config.memory_budget_bytes =
                    parse::<usize>(&take("--budget-mb"), "--budget-mb") << 20;
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve [--addr HOST:PORT] [--workers N] [--queue N] [--budget-mb N]"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let server = match Server::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => die(&format!("bind {addr}: {e}")),
    };
    println!("listening on {}", server.local_addr());
    eprintln!(
        "serve: {} workers, queue capacity {}, memory budget {}",
        config.workers.max(1),
        config.queue_capacity,
        if config.memory_budget_bytes == 0 {
            "unbounded".to_string()
        } else {
            format!("{} MiB", config.memory_budget_bytes >> 20)
        }
    );
    server.run();
    eprintln!("serve: shut down cleanly");
}

fn parse<T: std::str::FromStr>(s: &str, name: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{name}: bad value `{s}`")))
}

fn die(message: &str) -> ! {
    eprintln!("serve: {message}");
    std::process::exit(2);
}
