//! A line-oriented client for the graph-analytics server.
//!
//! ```text
//! client --addr 127.0.0.1:7177 '{"op":"ping"}' '{"op":"list_graphs"}'
//! client --addr 127.0.0.1:7177 -          # read request lines from stdin
//! ```
//!
//! Each request prints its JSON response on stdout.  Exits non-zero if
//! any response has `"status": "error"` (after printing it), so shell
//! scripts can assert success.

use std::io::BufRead;

use xmt_service::client::{field_bool, field_str};
use xmt_service::Client;

fn main() {
    let mut addr = "127.0.0.1:7177".to_string();
    let mut requests: Vec<String> = Vec::new();
    let mut from_stdin = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| die("--addr needs a value"));
            }
            "--help" | "-h" => {
                println!("usage: client [--addr HOST:PORT] REQUEST_JSON... | -");
                return;
            }
            "-" => from_stdin = true,
            _ => requests.push(arg),
        }
    }
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => die(&format!("connect {addr}: {e}")),
    };
    let mut failed = false;
    let mut send = |client: &mut Client, line: &str| {
        if line.trim().is_empty() {
            return;
        }
        match client.request_line(line) {
            Ok(response) => {
                let json = serde_json::to_string(&response)
                    .unwrap_or_else(|_| "<unserializable>".to_string());
                println!("{json}");
                if field_str(&response, "status") != Some("ok") {
                    failed = true;
                }
                // `result` with an expired wait is ok-status but carries
                // no output; make the distinction visible to scripts.
                if field_bool(&response, "timed_out") == Some(true) {
                    eprintln!("client: wait expired before the job reached a terminal state");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("client: {e}");
                failed = true;
            }
        }
    };
    for line in &requests {
        send(&mut client, line);
    }
    if from_stdin {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(line) => send(&mut client, &line),
                Err(_) => break,
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn die(message: &str) -> ! {
    eprintln!("client: {message}");
    std::process::exit(2);
}
