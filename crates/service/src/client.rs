//! A minimal blocking client for the wire protocol: send one JSON line,
//! read one JSON line back.  Shared by the `client` binary, the bench
//! driver, and the end-to-end tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use serde::Content;

use crate::error::ServiceError;

/// One connection to a running server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Send one raw JSON line and return the parsed response tree.
    pub fn request_line(&mut self, line: &str) -> Result<Content, ServiceError> {
        writeln!(self.writer, "{}", line.trim_end()).map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).map_err(io_err)?;
        if n == 0 {
            return Err(ServiceError::Internal {
                message: "server closed the connection".to_string(),
            });
        }
        serde_json::from_str(&response).map_err(|e| ServiceError::Internal {
            message: format!("unparseable response: {e}"),
        })
    }

    /// Send a request tree; `Err` carries the server's typed error when
    /// the response has `"status": "error"`.
    pub fn request(&mut self, tree: &Content) -> Result<Content, ServiceError> {
        let line = serde_json::to_string(tree).map_err(|e| ServiceError::Internal {
            message: format!("unserializable request: {e}"),
        })?;
        let response = self.request_line(&line)?;
        match field_str(&response, "status") {
            Some("ok") => Ok(response),
            Some("error") => Err(decode_error(&response)),
            _ => Err(ServiceError::Internal {
                message: "response missing status".to_string(),
            }),
        }
    }
}

fn io_err(e: std::io::Error) -> ServiceError {
    ServiceError::Internal {
        message: format!("io error: {e}"),
    }
}

/// Fetch a string field out of a response tree.
pub fn field_str<'a>(tree: &'a Content, name: &str) -> Option<&'a str> {
    match tree {
        Content::Map(entries) => entries.iter().find_map(|(k, v)| match v {
            Content::Str(s) if k == name => Some(s.as_str()),
            _ => None,
        }),
        _ => None,
    }
}

/// Fetch an unsigned integer field out of a response tree.
pub fn field_u64(tree: &Content, name: &str) -> Option<u64> {
    match tree {
        Content::Map(entries) => entries.iter().find_map(|(k, v)| match v {
            Content::U64(n) if k == name => Some(*n),
            Content::I64(n) if k == name && *n >= 0 => Some(*n as u64),
            _ => None,
        }),
        _ => None,
    }
}

/// Fetch a boolean field out of a response tree.
pub fn field_bool(tree: &Content, name: &str) -> Option<bool> {
    match tree {
        Content::Map(entries) => entries.iter().find_map(|(k, v)| match v {
            Content::Bool(b) if k == name => Some(*b),
            _ => None,
        }),
        _ => None,
    }
}

/// Fetch a sub-tree field out of a response tree.
pub fn field<'a>(tree: &'a Content, name: &str) -> Option<&'a Content> {
    match tree {
        Content::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn decode_error(response: &Content) -> ServiceError {
    let message = field_str(response, "message").unwrap_or("unknown error");
    match field_str(response, "code") {
        Some("queue_full") => ServiceError::QueueFull { capacity: 0 },
        Some("graph_not_found") => ServiceError::GraphNotFound {
            name: message.to_string(),
        },
        Some("budget_exceeded") => ServiceError::BudgetExceeded {
            name: message.to_string(),
            bytes: 0,
            budget: 0,
        },
        Some("not_dynamic") => ServiceError::NotDynamic {
            name: message.to_string(),
        },
        Some("job_not_found") => ServiceError::JobNotFound { id: 0 },
        Some("no_checkpoint") => ServiceError::NoCheckpoint { id: 0 },
        Some("wrong_state") => ServiceError::WrongState {
            id: 0,
            state: message.to_string(),
        },
        Some("bad_request") => ServiceError::BadRequest {
            message: message.to_string(),
        },
        Some("shutting_down") => ServiceError::ShuttingDown,
        _ => ServiceError::Internal {
            message: message.to_string(),
        },
    }
}
