//! Job execution: one spec in, one verdict out.
//!
//! The BSP engines (`bsp` on the simulator-faithful fixed executor,
//! `native` on the guided host-thread executor) thread the scheduler's
//! stop hook into the sliced runtime, so cancellation and deadlines cut
//! the run at a superstep boundary and hand back a [`StoredCheckpoint`]
//! instead of losing the work — a checkpoint cut on one BSP engine
//! resumes on the other, since both run the same programs and frame
//! format.  The GraphCT engine serves the same three kernels from the
//! shared-memory baseline — faster per job, but uninterruptible once
//! started (no superstep boundaries to cut at).

use std::sync::Arc;

use xmt_bsp::algorithms::bfs::BfsProgram;
use xmt_bsp::algorithms::components::CcProgram;
use xmt_bsp::algorithms::pagerank::PagerankProgram;
use xmt_bsp::algorithms::triangles::TcProgram;
use xmt_bsp::program::VertexProgram;
use xmt_bsp::runtime::Snapshot;
use xmt_bsp::{run_bsp_slice_exec, SlicedRun, StopHook, SuperstepFrame};
use xmt_graph::Csr;
use xmt_par::Executor;
use xmt_trace::TraceSink;

use crate::error::ServiceError;
use crate::job::{Algorithm, Engine, JobOutput, JobSpec, StoredCheckpoint, StoredFrame};

/// How a job run ended.
#[derive(Debug)]
// One verdict exists per run and the scheduler destructures it on
// receipt — it is never stored in bulk — so the variant-size spread
// (the warmed frame's buffer handles) is not worth an indirection.
#[allow(clippy::large_enum_variant)]
pub enum ExecVerdict {
    /// Ran to quiescence.
    Completed {
        /// The algorithm's output.
        output: JobOutput,
        /// Supersteps executed (0 for the GraphCT engine).
        supersteps: u64,
    },
    /// Interrupted (stop hook or superstep limit); resumable.
    Interrupted {
        /// Partial states + runtime checkpoint.
        checkpoint: StoredCheckpoint,
        /// The run's warmed superstep frame; a resume that hands it back
        /// continues without re-paying the warm-up allocations.
        frame: StoredFrame,
        /// Supersteps executed before the cut.
        supersteps: u64,
    },
}

/// Run `spec` on `graph`, optionally continuing `from` a checkpoint,
/// polling `stop` at superstep boundaries.  Per-superstep trace records
/// accumulate in `sink` (a no-op unless the `trace` feature is on).
///
/// `frame` optionally carries the warmed [`StoredFrame`] of the
/// interrupted run being resumed; a mismatched or absent frame just
/// means the run warms a fresh one (results are identical either way).
pub fn execute(
    spec: &JobSpec,
    graph: &Arc<Csr>,
    from: Option<StoredCheckpoint>,
    frame: Option<StoredFrame>,
    stop: StopHook<'_>,
    sink: &mut TraceSink,
) -> Result<ExecVerdict, ServiceError> {
    match spec.engine {
        // Fixed scheduling on the global pool: the loop shapes the XMT
        // cost model is calibrated against.
        Engine::Bsp => execute_bsp(spec, graph, from, frame, stop, sink, &Executor::fixed()),
        // Guided scheduling: decaying chunks back-fill RMAT hub skew.
        // Same programs, transports, frames and checkpoints as `bsp`.
        Engine::Native => execute_bsp(spec, graph, from, frame, stop, sink, &Executor::guided()),
        Engine::GraphCt => execute_graphct(spec, graph, from, sink),
        // Incremental jobs are answered at admission (the registry
        // captures the stinger-maintained state under the graph lock)
        // and short-circuited by the scheduler before reaching here.
        Engine::Incremental => Err(ServiceError::Internal {
            message: "incremental jobs are answered at admission; nothing to execute".to_string(),
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_bsp(
    spec: &JobSpec,
    graph: &Arc<Csr>,
    from: Option<StoredCheckpoint>,
    frame: Option<StoredFrame>,
    stop: StopHook<'_>,
    sink: &mut TraceSink,
    exec: &Executor,
) -> Result<ExecVerdict, ServiceError> {
    match spec.algorithm {
        Algorithm::Cc => {
            let from = match from {
                None => None,
                Some(StoredCheckpoint::Cc(states, resume)) => Some((states, resume)),
                Some(other) => return Err(checkpoint_mismatch(spec.algorithm, &other)),
            };
            let mut frame = match frame {
                Some(StoredFrame::Cc(f)) => f,
                _ => SuperstepFrame::new(),
            };
            let run = run_sliced(graph, &CcProgram, spec, from, stop, sink, &mut frame, exec)?;
            Ok(verdict(
                run,
                JobOutput::Labels,
                StoredCheckpoint::Cc,
                StoredFrame::Cc(frame),
            ))
        }
        Algorithm::Bfs => {
            let from = match from {
                None => None,
                Some(StoredCheckpoint::Bfs(states, resume)) => Some((states, resume)),
                Some(other) => return Err(checkpoint_mismatch(spec.algorithm, &other)),
            };
            let program = BfsProgram {
                source: spec.source,
            };
            let mut frame = match frame {
                Some(StoredFrame::Bfs(f)) => f,
                _ => SuperstepFrame::new(),
            };
            let run = run_sliced(graph, &program, spec, from, stop, sink, &mut frame, exec)?;
            Ok(verdict(
                run,
                |states| JobOutput::Bfs {
                    dist: states.iter().map(|s| s.dist).collect(),
                    parent: states.iter().map(|s| s.parent).collect(),
                },
                StoredCheckpoint::Bfs,
                StoredFrame::Bfs(frame),
            ))
        }
        Algorithm::Pagerank => {
            let from = match from {
                None => None,
                Some(StoredCheckpoint::Pagerank(states, resume)) => Some((states, resume)),
                Some(other) => return Err(checkpoint_mismatch(spec.algorithm, &other)),
            };
            let program = PagerankProgram {
                damping: spec.damping,
                tolerance: spec.tolerance,
            };
            let mut frame = match frame {
                Some(StoredFrame::Pagerank(f)) => f,
                _ => SuperstepFrame::new(),
            };
            let run = run_sliced(graph, &program, spec, from, stop, sink, &mut frame, exec)?;
            Ok(verdict(
                run,
                JobOutput::Ranks,
                StoredCheckpoint::Pagerank,
                StoredFrame::Pagerank(frame),
            ))
        }
        Algorithm::Triangles => {
            let from = match from {
                None => None,
                Some(StoredCheckpoint::Triangles(states, resume)) => Some((states, resume)),
                Some(other) => return Err(checkpoint_mismatch(spec.algorithm, &other)),
            };
            let mut frame = match frame {
                Some(StoredFrame::Triangles(f)) => f,
                _ => SuperstepFrame::new(),
            };
            let run = run_sliced(graph, &TcProgram, spec, from, stop, sink, &mut frame, exec)?;
            Ok(verdict(
                run,
                // Per-vertex confirmed-triangle tallies sum to the
                // global count (each triangle lands at its
                // lowest-ordered corner exactly once).
                |states| JobOutput::Triangles(states.iter().sum()),
                StoredCheckpoint::Triangles,
                StoredFrame::Triangles(frame),
            ))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sliced<P: VertexProgram>(
    graph: &Csr,
    program: &P,
    spec: &JobSpec,
    from: Option<Snapshot<P>>,
    stop: StopHook<'_>,
    sink: &mut TraceSink,
    frame: &mut SuperstepFrame<P::State, P::Message>,
    exec: &Executor,
) -> Result<SlicedRun<P::State, P::Message>, ServiceError> {
    run_bsp_slice_exec(
        graph,
        program,
        spec.config,
        None,
        from,
        Some(stop),
        Some(sink),
        frame,
        exec,
    )
    .map_err(|e| ServiceError::Internal {
        message: e.to_string(),
    })
}

fn verdict<S, M>(
    run: SlicedRun<S, M>,
    output: impl FnOnce(Vec<S>) -> JobOutput,
    checkpoint: impl FnOnce(Vec<S>, xmt_bsp::ResumePoint<M>) -> StoredCheckpoint,
    frame: StoredFrame,
) -> ExecVerdict {
    let supersteps = run.result.supersteps;
    match run.resume {
        None => ExecVerdict::Completed {
            output: output(run.result.states),
            supersteps,
        },
        Some(resume) => ExecVerdict::Interrupted {
            checkpoint: checkpoint(run.result.states, resume),
            frame,
            supersteps,
        },
    }
}

fn checkpoint_mismatch(expected: Algorithm, found: &StoredCheckpoint) -> ServiceError {
    ServiceError::Internal {
        message: format!(
            "checkpoint algorithm mismatch: job is {}, checkpoint is {}",
            expected.name(),
            found.algorithm().name()
        ),
    }
}

fn execute_graphct(
    spec: &JobSpec,
    graph: &Arc<Csr>,
    from: Option<StoredCheckpoint>,
    sink: &mut TraceSink,
) -> Result<ExecVerdict, ServiceError> {
    if from.is_some() {
        return Err(ServiceError::Internal {
            message: "the graphct engine has no superstep boundaries and cannot resume \
                      a checkpoint; resubmit on the bsp or native engine"
                .to_string(),
        });
    }
    let output = match spec.algorithm {
        Algorithm::Cc => JobOutput::Labels(graphct::connected_components_traced(graph, sink)),
        Algorithm::Bfs => {
            let r = graphct::bfs_traced(graph, spec.source, sink);
            JobOutput::Bfs {
                dist: r.dist,
                parent: r.parent,
            }
        }
        // Pagerank has no traced GraphCT variant (its per-iteration
        // profile is flat by construction); the job runs untraced.
        Algorithm::Pagerank => JobOutput::Ranks(graphct::pagerank(
            graph,
            graphct::pagerank::PagerankOptions {
                damping: spec.damping,
                tolerance: spec.tolerance,
                max_iterations: spec.config.max_supersteps as usize,
            },
        )),
        // One-shot kernel (no per-level structure to trace).  Honors the
        // job config's intersection strategy (DAG-ordered sweep).
        Algorithm::Triangles => JobOutput::Triangles(graphct::count_triangles_with(
            graph,
            spec.config.intersect,
            None,
            &Executor::fixed(),
        )),
    };
    Ok(ExecVerdict::Completed {
        output,
        supersteps: 0,
    })
}
