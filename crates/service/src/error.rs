//! Typed service errors, stable across the wire.
//!
//! Every error a request can provoke has a machine-readable code (what
//! clients branch on — e.g. back off on `queue_full`) and a human
//! message.  Admission-control rejections are errors *by design*: a full
//! queue answers immediately instead of accepting unbounded work.

use std::fmt;

/// Everything that can go wrong between a request arriving and a job
/// reaching a worker.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// Admission control: the job queue is at capacity.  The client
    /// should back off and retry; nothing was enqueued.
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The named graph is not in the registry.
    GraphNotFound { name: String },
    /// The graph alone exceeds the registry's memory budget; no amount
    /// of eviction can make it fit.
    GraphTooLarge {
        name: String,
        bytes: usize,
        budget: usize,
    },
    /// An update batch would grow the graph past the registry's memory
    /// budget even with every other entry evicted; nothing was applied.
    BudgetExceeded {
        name: String,
        bytes: usize,
        budget: usize,
    },
    /// The operation needs a dynamic (streaming) graph but the named
    /// entry is a static registration.
    NotDynamic { name: String },
    /// No job with this id (never existed, or evicted).
    JobNotFound { id: u64 },
    /// A resume request for a job that holds no checkpoint (it
    /// completed, failed, or was cut before the first superstep).
    NoCheckpoint { id: u64 },
    /// The job exists but is not in a state the operation applies to.
    WrongState { id: u64, state: String },
    /// A tuning parameter in the submitted `BspConfig` fails validation
    /// (non-finite or negative numeric knob, unknown intersect
    /// strategy...); nothing was enqueued.  Distinct from `BadRequest`
    /// so clients can tell a malformed envelope from a well-formed
    /// request carrying an unusable config.
    InvalidConfig {
        /// The offending `BspConfig` field name.
        field: &'static str,
        /// Why the value was rejected (includes the value itself).
        reason: String,
    },
    /// The request is malformed (unknown op/algorithm, missing field,
    /// out-of-range parameter...).
    BadRequest { message: String },
    /// The scheduler is shutting down and accepts no new work.
    ShuttingDown,
    /// The job ran but the engine failed (bad checkpoint shape, panic in
    /// a vertex program...).
    Internal { message: String },
}

impl ServiceError {
    /// The stable machine-readable code clients dispatch on.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::QueueFull { .. } => "queue_full",
            ServiceError::GraphNotFound { .. } => "graph_not_found",
            ServiceError::GraphTooLarge { .. } => "graph_too_large",
            ServiceError::BudgetExceeded { .. } => "budget_exceeded",
            ServiceError::NotDynamic { .. } => "not_dynamic",
            ServiceError::JobNotFound { .. } => "job_not_found",
            ServiceError::NoCheckpoint { .. } => "no_checkpoint",
            ServiceError::WrongState { .. } => "wrong_state",
            ServiceError::InvalidConfig { .. } => "invalid_config",
            ServiceError::BadRequest { .. } => "bad_request",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::Internal { .. } => "internal",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "job queue full ({capacity} jobs); retry later")
            }
            ServiceError::GraphNotFound { name } => write!(f, "graph `{name}` not registered"),
            ServiceError::GraphTooLarge {
                name,
                bytes,
                budget,
            } => write!(
                f,
                "graph `{name}` needs {bytes} bytes but the registry budget is {budget}"
            ),
            ServiceError::BudgetExceeded {
                name,
                bytes,
                budget,
            } => write!(
                f,
                "update would grow graph `{name}` to {bytes} bytes, past the {budget}-byte \
                 registry budget; batch rejected"
            ),
            ServiceError::NotDynamic { name } => write!(
                f,
                "graph `{name}` is a static registration; register it with `dynamic: true` \
                 to accept updates"
            ),
            ServiceError::JobNotFound { id } => write!(f, "no job {id}"),
            ServiceError::NoCheckpoint { id } => write!(f, "job {id} holds no checkpoint"),
            ServiceError::WrongState { id, state } => {
                write!(f, "job {id} is {state}; operation does not apply")
            }
            ServiceError::InvalidConfig { field, reason } => {
                write!(f, "config field `{field}`: {reason}")
            }
            ServiceError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for ServiceError {}
