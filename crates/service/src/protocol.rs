//! The wire protocol: newline-delimited JSON, one request per line, one
//! response per line.
//!
//! Requests are parsed *leniently*: a raw [`Content`] tree is dispatched
//! on its `op` field and every other field is optional with a sane
//! default (the compat serde derive is strict, so request parsing is by
//! hand; responses are built as `Content` trees directly).  Every
//! response carries `"status": "ok"` or `"status": "error"` with a
//! stable machine-readable `code` from [`ServiceError::code`].
//!
//! ```text
//! → {"op":"register_graph","name":"r10","kind":"rmat","scale":10}
//! ← {"status":"ok","graph":{"name":"r10","vertices":1024,...}}
//! → {"op":"submit","algorithm":"cc","graph":"r10"}
//! ← {"status":"ok","job_id":1}
//! → {"op":"result","job_id":1,"wait_ms":5000}
//! ← {"status":"ok","job_id":1,"supersteps":7,"result":{"labels":[...]}}
//! ```

use serde::{Content, Deserialize};

use xmt_bsp::{BspConfig, IntersectStrategy};
use xmt_graph::builder::build_undirected;
use xmt_graph::gen::rmat::{rmat_edges, RmatParams};
use xmt_graph::gen::{er, structured};
use xmt_graph::Csr;

use crate::error::ServiceError;
use crate::job::{Algorithm, Engine, JobId, JobOutput, JobSpec};
use crate::registry::{GraphEntryInfo, RegistryStats};
use crate::scheduler::{JobSnapshot, SchedulerStats};
use crate::streaming::UpdateOutcome;

/// A parsed, validated client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Build a graph server-side and register it.
    RegisterGraph {
        /// Registry name.
        name: String,
        /// Generator description.
        spec: GraphSpec,
        /// Register as a dynamic (streaming) entry that accepts
        /// `update` batches.
        dynamic: bool,
    },
    /// Apply an edge insert/delete batch to a dynamic graph.
    Update {
        /// Registry name of the target (dynamic) graph.
        graph: String,
        /// Undirected edges to insert, as `[u, v]` pairs.
        insert: Vec<(u64, u64)>,
        /// Undirected edges to delete, as `[u, v]` pairs.
        delete: Vec<(u64, u64)>,
    },
    /// Drop a graph from the registry.
    UnregisterGraph {
        /// Registry name.
        name: String,
    },
    /// List registered graphs.
    ListGraphs,
    /// Submit a job.
    Submit {
        /// Validated job description.
        spec: JobSpec,
    },
    /// Resubmit an interrupted job from its stored checkpoint.
    Resume {
        /// The interrupted job.
        job_id: JobId,
        /// Fresh deadline for the continuation (`None` = none).
        deadline_ms: Option<u64>,
    },
    /// A job's lifecycle snapshot.
    Status {
        /// Target job.
        job_id: JobId,
    },
    /// A completed job's output, optionally waiting for it to finish.
    Result {
        /// Target job.
        job_id: JobId,
        /// Poll up to this long for the job to reach a terminal state.
        wait_ms: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Target job.
        job_id: JobId,
    },
    /// A terminal job's per-superstep trace (`job_id`), or a dynamic
    /// graph's applied-batch trace (`graph`).  Exactly one target.
    Trace {
        /// Target job, for a per-superstep trace.
        job_id: Option<JobId>,
        /// Target dynamic graph, for an update-batch trace.
        graph: Option<String>,
    },
    /// Snapshots of all jobs.
    ListJobs,
    /// Scheduler/registry counters and latency histograms.
    Stats,
    /// Drain and stop the server.
    Shutdown,
}

/// A server-side graph build recipe (`register_graph`).
#[derive(Clone, Debug)]
pub struct GraphSpec {
    /// Generator: `rmat`, `path`, `ring`, `star`, `grid`, or `gnm`.
    pub kind: String,
    /// RMAT scale (log2 vertices).
    pub scale: u32,
    /// RMAT edges per vertex.
    pub edge_factor: u64,
    /// Vertex count for `path`/`ring`/`star`/`gnm`; rows for `grid`.
    pub n: u64,
    /// Edge count for `gnm`; columns for `grid`.
    pub m: u64,
    /// Generator seed.
    pub seed: u64,
}

/// Build the CSR a [`GraphSpec`] describes.
pub fn build_graph(spec: &GraphSpec) -> Result<Csr, ServiceError> {
    let edges = match spec.kind.as_str() {
        "rmat" => {
            if spec.scale == 0 || spec.scale > 24 {
                return Err(bad("rmat scale must be in 1..=24"));
            }
            let params = RmatParams {
                edge_factor: spec.edge_factor.clamp(1, 64),
                ..RmatParams::graph500(spec.scale)
            };
            rmat_edges(&params, spec.seed)
        }
        "path" => structured::path(spec.n),
        "ring" => structured::ring(spec.n),
        "star" => structured::star(spec.n),
        "grid" => structured::grid(spec.n, spec.m.max(1)),
        "gnm" => er::gnm(spec.n, spec.m, spec.seed),
        other => return Err(bad(&format!("unknown graph kind `{other}`"))),
    };
    Ok(build_undirected(&edges))
}

fn bad(message: &str) -> ServiceError {
    ServiceError::BadRequest {
        message: message.to_string(),
    }
}

/// Look up an optional field; missing or `null` is `None`, a present
/// field of the wrong shape is a `bad_request`.
fn opt<T: Deserialize>(c: &Content, name: &str) -> Result<Option<T>, ServiceError> {
    match c {
        Content::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
            None => Ok(None),
            Some((_, Content::Null)) => Ok(None),
            Some((_, v)) => T::from_content(v)
                .map(Some)
                .map_err(|e| bad(&format!("field `{name}`: {e}"))),
        },
        _ => Err(bad("request must be a JSON object")),
    }
}

fn req<T: Deserialize>(c: &Content, name: &str) -> Result<T, ServiceError> {
    opt(c, name)?.ok_or_else(|| bad(&format!("missing field `{name}`")))
}

/// Parse one request line (already JSON-decoded into a tree).
pub fn parse_request(c: &Content) -> Result<Request, ServiceError> {
    let op: String = req(c, "op")?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "register_graph" => Ok(Request::RegisterGraph {
            name: req(c, "name")?,
            spec: GraphSpec {
                kind: opt(c, "kind")?.unwrap_or_else(|| "rmat".to_string()),
                scale: opt(c, "scale")?.unwrap_or(10),
                edge_factor: opt(c, "edge_factor")?.unwrap_or(16),
                n: opt(c, "n")?.unwrap_or(1024),
                m: opt(c, "m")?.unwrap_or(4096),
                seed: opt(c, "seed")?.unwrap_or(1),
            },
            dynamic: opt(c, "dynamic")?.unwrap_or(false),
        }),
        "update" => {
            let insert: Vec<(u64, u64)> = opt(c, "insert")?.unwrap_or_default();
            let delete: Vec<(u64, u64)> = opt(c, "delete")?.unwrap_or_default();
            if insert.is_empty() && delete.is_empty() {
                return Err(bad("update needs a non-empty `insert` or `delete` list"));
            }
            Ok(Request::Update {
                graph: req(c, "graph")?,
                insert,
                delete,
            })
        }
        "unregister_graph" => Ok(Request::UnregisterGraph {
            name: req(c, "name")?,
        }),
        "list_graphs" => Ok(Request::ListGraphs),
        "submit" => Ok(Request::Submit {
            spec: parse_job_spec(c)?,
        }),
        "resume" => Ok(Request::Resume {
            job_id: req(c, "job_id")?,
            deadline_ms: opt(c, "deadline_ms")?,
        }),
        "status" => Ok(Request::Status {
            job_id: req(c, "job_id")?,
        }),
        "result" => Ok(Request::Result {
            job_id: req(c, "job_id")?,
            wait_ms: opt(c, "wait_ms")?.unwrap_or(0),
        }),
        "cancel" => Ok(Request::Cancel {
            job_id: req(c, "job_id")?,
        }),
        "trace" => {
            let job_id: Option<JobId> = opt(c, "job_id")?;
            let graph: Option<String> = opt(c, "graph")?;
            match (&job_id, &graph) {
                (None, None) => Err(bad("trace needs a `job_id` or a `graph`")),
                (Some(_), Some(_)) => Err(bad("trace takes `job_id` or `graph`, not both")),
                _ => Ok(Request::Trace { job_id, graph }),
            }
        }
        "list_jobs" => Ok(Request::ListJobs),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(bad(&format!("unknown op `{other}`"))),
    }
}

fn parse_job_spec(c: &Content) -> Result<JobSpec, ServiceError> {
    let algorithm: String = req(c, "algorithm")?;
    let algorithm = Algorithm::parse(&algorithm)
        .ok_or_else(|| bad(&format!("unknown algorithm `{algorithm}`")))?;
    let engine: Option<String> = opt(c, "engine")?;
    let engine = match engine {
        None => Engine::Bsp,
        Some(name) => Engine::parse(&name).ok_or_else(|| {
            bad(&format!(
                "unknown engine `{name}` (expected `bsp`/`sim`, `native`, `graphct`/`shared`, \
                 or `incremental`/`inc`)"
            ))
        })?,
    };
    // `config` takes a full serialized BspConfig (strict, all fields);
    // `max_supersteps` and `intersect` alone are common-case shortcuts.
    let mut config: BspConfig = opt(c, "config")?.unwrap_or_default();
    if let Some(max) = opt::<u64>(c, "max_supersteps")? {
        config.max_supersteps = max;
    }
    if let Some(name) = opt::<String>(c, "intersect")? {
        config.intersect =
            IntersectStrategy::parse(&name).ok_or_else(|| ServiceError::InvalidConfig {
                field: "intersect",
                reason: format!(
                    "unknown intersect strategy `{name}` (expected `merge`, `binsearch`, \
                     `hash`, or `auto`)"
                ),
            })?;
    }
    validate_config(&config)?;
    Ok(JobSpec {
        algorithm,
        engine,
        graph: req(c, "graph")?,
        source: opt(c, "source")?.unwrap_or(0),
        damping: opt(c, "damping")?.unwrap_or(0.85),
        tolerance: opt(c, "tolerance")?.unwrap_or(1e-7),
        config,
        priority: opt(c, "priority")?.unwrap_or(0),
        deadline_ms: opt(c, "deadline_ms")?,
    })
}

/// Admission-time validation of the tuning parameters a job's
/// [`BspConfig`] carries: the delivery heuristics divide and compare by
/// these, so a NaN or negative value would silently disable or invert
/// the push/pull decision mid-run.  Rejecting here keeps bad configs
/// out of the queue entirely.
fn validate_config(config: &BspConfig) -> Result<(), ServiceError> {
    for (field, value) in [
        ("pull_threshold", config.pull_threshold),
        ("beamer_alpha", config.beamer_alpha),
        ("beamer_beta", config.beamer_beta),
    ] {
        if !value.is_finite() || value < 0.0 {
            return Err(ServiceError::InvalidConfig {
                field,
                reason: format!("must be finite and non-negative, got {value}"),
            });
        }
    }
    Ok(())
}

/// Tiny ordered-map builder for response trees.
pub struct Obj(Vec<(String, Content)>);

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj(Vec::new())
    }

    /// Append a field.
    pub fn put(mut self, key: &str, value: Content) -> Self {
        self.0.push((key.to_string(), value));
        self
    }

    /// Finish into a [`Content::Map`].
    pub fn done(self) -> Content {
        Content::Map(self.0)
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// `{"status":"ok"}`, ready for more fields.
pub fn ok() -> Obj {
    Obj::new().put("status", str("ok"))
}

/// An error response tree for `err`.
pub fn error_response(err: &ServiceError) -> Content {
    Obj::new()
        .put("status", str("error"))
        .put("code", str(err.code()))
        .put("message", str(&err.to_string()))
        .done()
}

/// `Content::Str` shorthand.
pub fn str(s: &str) -> Content {
    Content::Str(s.to_string())
}

/// `Content::U64` shorthand.
pub fn u64v(v: u64) -> Content {
    Content::U64(v)
}

/// A graph registry row as a response tree.
pub fn graph_content(info: &GraphEntryInfo) -> Content {
    Obj::new()
        .put("name", str(&info.name))
        .put("vertices", u64v(info.vertices))
        .put("edges", u64v(info.edges))
        .put("bytes", u64v(info.bytes))
        .put("dynamic", Content::Bool(info.dynamic))
        .put("epoch", u64v(info.epoch))
        .done()
}

/// An applied update batch's outcome as a response tree.
pub fn update_content(graph: &str, outcome: &UpdateOutcome) -> Content {
    Obj::new()
        .put("graph", str(graph))
        .put("epoch", u64v(outcome.epoch))
        .put("inserted", u64v(outcome.inserted))
        .put("deleted", u64v(outcome.deleted))
        .put("edges", u64v(outcome.edges))
        .put("bytes", u64v(outcome.bytes))
        .done()
}

/// A dynamic graph's applied-batch trace as a response tree.  The
/// series is empty when the `trace` feature is off.
pub fn update_trace_content(trace: &xmt_trace::UpdateTrace) -> Content {
    Obj::new()
        .put("graph", str(&trace.graph))
        .put(
            "updates",
            Content::Seq(
                trace
                    .updates
                    .iter()
                    .map(|u| {
                        Obj::new()
                            .put("epoch", u64v(u.epoch))
                            .put("inserted", u64v(u.inserted))
                            .put("deleted", u64v(u.deleted))
                            .put("edges_after", u64v(u.edges_after))
                            .put("bytes_after", u64v(u.bytes_after))
                            .put("apply_ns", u64v(u.apply_ns))
                            .done()
                    })
                    .collect(),
            ),
        )
        .done()
}

/// A job snapshot as a response tree.
pub fn job_content(snap: &JobSnapshot) -> Content {
    let mut obj = Obj::new()
        .put("job_id", u64v(snap.id))
        .put("state", str(snap.state.name()))
        .put("algorithm", str(snap.algorithm))
        .put("engine", str(snap.engine))
        .put("graph", str(&snap.graph))
        .put("priority", u64v(snap.priority as u64))
        .put("queued_ms", u64v(snap.queued_ms))
        .put("running_ms", u64v(snap.running_ms))
        .put("supersteps", u64v(snap.supersteps))
        .put("epoch", u64v(snap.epoch))
        .put("has_checkpoint", Content::Bool(snap.has_checkpoint));
    if let Some(err) = &snap.error {
        obj = obj.put("error", str(err));
    }
    obj.done()
}

/// A job output as a response tree (`labels` / `dist`+`parent` /
/// `ranks`).
pub fn output_content(output: &JobOutput) -> Content {
    match output {
        JobOutput::Labels(labels) => Obj::new()
            .put(
                "labels",
                Content::Seq(labels.iter().map(|&l| Content::U64(l)).collect()),
            )
            .done(),
        JobOutput::Bfs { dist, parent } => Obj::new()
            .put(
                "dist",
                Content::Seq(dist.iter().map(|&d| Content::U64(d)).collect()),
            )
            .put(
                "parent",
                Content::Seq(parent.iter().map(|&p| Content::U64(p)).collect()),
            )
            .done(),
        JobOutput::Ranks(ranks) => Obj::new()
            .put(
                "ranks",
                Content::Seq(ranks.iter().map(|&r| Content::F64(r)).collect()),
            )
            .done(),
        JobOutput::Triangles(count) => Obj::new().put("triangles", u64v(*count)).done(),
    }
}

/// A job's per-superstep trace as a response tree.  Phase timings ride
/// as nanoseconds; the per-bucket breakdown appears only for supersteps
/// that used the bucketed transport.
pub fn trace_content(trace: &xmt_trace::JobTrace) -> Content {
    Obj::new()
        .put("label", str(&trace.label))
        .put(
            "supersteps",
            Content::Seq(
                trace
                    .supersteps
                    .iter()
                    .map(|t| {
                        let mut obj = Obj::new()
                            .put("superstep", u64v(t.superstep))
                            .put("active", u64v(t.active))
                            .put("messages_sent", u64v(t.messages_sent))
                            .put("messages_generated", u64v(t.messages_generated))
                            .put("messages_delivered", u64v(t.messages_delivered))
                            .put("halt_votes", u64v(t.halt_votes))
                            .put("pulled", Content::Bool(t.pulled))
                            .put("pull_probes", u64v(t.pull_probes))
                            .put("scan_ns", u64v(t.scan_ns))
                            .put("compute_ns", u64v(t.compute_ns))
                            .put("exchange_ns", u64v(t.exchange_ns))
                            .put("total_ns", u64v(t.total_ns));
                        if !t.bucket_messages.is_empty() {
                            obj = obj.put(
                                "bucket_messages",
                                Content::Seq(
                                    t.bucket_messages.iter().map(|&b| Content::U64(b)).collect(),
                                ),
                            );
                        }
                        obj.done()
                    })
                    .collect(),
            ),
        )
        .done()
}

/// Scheduler + registry stats as a response tree.
pub fn stats_content(stats: &SchedulerStats, registry: &RegistryStats) -> Content {
    Obj::new()
        .put("workers", u64v(stats.workers as u64))
        .put("queue_capacity", u64v(stats.queue_capacity as u64))
        .put("queue_depth", u64v(stats.queue_depth as u64))
        .put("submitted", u64v(stats.submitted))
        .put("rejected", u64v(stats.rejected))
        .put(
            "jobs_by_state",
            Content::Map(
                stats
                    .jobs_by_state
                    .iter()
                    .map(|(name, count)| (name.to_string(), Content::U64(*count)))
                    .collect(),
            ),
        )
        .put(
            "latencies",
            Content::Seq(
                stats
                    .latencies
                    .iter()
                    .map(|s| {
                        Obj::new()
                            .put("label", str(&s.label))
                            .put("completed", u64v(s.completed))
                            .put("mean_ms", Content::F64(s.mean_ms))
                            .put("p50_ms", Content::F64(s.p50_ms))
                            .put("p99_ms", Content::F64(s.p99_ms))
                            .put("max_ms", Content::F64(s.max_ms))
                            .done()
                    })
                    .collect(),
            ),
        )
        .put(
            "registry",
            Obj::new()
                .put("graphs", u64v(registry.graphs as u64))
                .put("dynamic_graphs", u64v(registry.dynamic_graphs as u64))
                .put("used_bytes", u64v(registry.used_bytes as u64))
                .put("budget_bytes", u64v(registry.budget_bytes as u64))
                .put("evictions", u64v(registry.evictions))
                .put("batches_applied", u64v(registry.batches_applied))
                .put("edges_inserted", u64v(registry.edges_inserted))
                .put("edges_deleted", u64v(registry.edges_deleted))
                .put("snapshot_epochs_live", u64v(registry.snapshot_epochs_live))
                .done(),
        )
        .done()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Request, ServiceError> {
        let tree: Content = serde_json::from_str(line).expect("valid json");
        parse_request(&tree)
    }

    #[test]
    fn minimal_submit_fills_defaults() {
        let req = parse(r#"{"op":"submit","algorithm":"cc","graph":"g"}"#).unwrap();
        let Request::Submit { spec } = req else {
            panic!("wrong op");
        };
        assert_eq!(spec.algorithm, Algorithm::Cc);
        assert_eq!(spec.engine, Engine::Bsp);
        assert_eq!(spec.graph, "g");
        assert_eq!(spec.priority, 0);
        assert_eq!(spec.deadline_ms, None);
        assert_eq!(spec.config, BspConfig::default());
    }

    #[test]
    fn engine_names_parse_and_rejections_list_them() {
        for (name, engine) in [
            ("bsp", Engine::Bsp),
            ("sim", Engine::Bsp),
            ("native", Engine::Native),
            ("graphct", Engine::GraphCt),
            ("shared", Engine::GraphCt),
            ("incremental", Engine::Incremental),
            ("inc", Engine::Incremental),
        ] {
            let line =
                format!(r#"{{"op":"submit","algorithm":"cc","engine":"{name}","graph":"g"}}"#);
            let Request::Submit { spec } = parse(&line).unwrap() else {
                panic!("wrong op");
            };
            assert_eq!(spec.engine, engine, "engine name `{name}`");
        }
        let err =
            parse(r#"{"op":"submit","algorithm":"cc","engine":"warp","graph":"g"}"#).unwrap_err();
        assert_eq!(err.code(), "bad_request");
        let msg = err.to_string();
        for expected in [
            "warp",
            "bsp",
            "sim",
            "native",
            "graphct",
            "shared",
            "incremental",
        ] {
            assert!(msg.contains(expected), "`{msg}` missing `{expected}`");
        }
    }

    #[test]
    fn update_op_parses_pair_lists() {
        let req = parse(r#"{"op":"update","graph":"g","insert":[[0,1],[1,2]],"delete":[[3,4]]}"#)
            .unwrap();
        let Request::Update {
            graph,
            insert,
            delete,
        } = req
        else {
            panic!("wrong op");
        };
        assert_eq!(graph, "g");
        assert_eq!(insert, vec![(0, 1), (1, 2)]);
        assert_eq!(delete, vec![(3, 4)]);

        // One-sided batches are fine; empty ones are not.
        assert!(parse(r#"{"op":"update","graph":"g","delete":[[0,1]]}"#).is_ok());
        assert_eq!(
            parse(r#"{"op":"update","graph":"g"}"#).unwrap_err().code(),
            "bad_request"
        );
    }

    #[test]
    fn register_graph_dynamic_flag_defaults_off() {
        let Request::RegisterGraph { dynamic, .. } =
            parse(r#"{"op":"register_graph","name":"g","kind":"path","n":8}"#).unwrap()
        else {
            panic!("wrong op");
        };
        assert!(!dynamic);
        let Request::RegisterGraph { dynamic, .. } =
            parse(r#"{"op":"register_graph","name":"g","kind":"path","n":8,"dynamic":true}"#)
                .unwrap()
        else {
            panic!("wrong op");
        };
        assert!(dynamic);
    }

    #[test]
    fn trace_targets_a_job_xor_a_graph() {
        assert!(matches!(
            parse(r#"{"op":"trace","job_id":3}"#).unwrap(),
            Request::Trace {
                job_id: Some(3),
                graph: None,
            }
        ));
        let Request::Trace { job_id, graph } = parse(r#"{"op":"trace","graph":"g"}"#).unwrap()
        else {
            panic!("wrong op");
        };
        assert_eq!(job_id, None);
        assert_eq!(graph.as_deref(), Some("g"));
        assert_eq!(
            parse(r#"{"op":"trace"}"#).unwrap_err().code(),
            "bad_request"
        );
        assert_eq!(
            parse(r#"{"op":"trace","job_id":1,"graph":"g"}"#)
                .unwrap_err()
                .code(),
            "bad_request"
        );
    }

    #[test]
    fn triangles_output_serializes_as_a_count() {
        let tree = output_content(&JobOutput::Triangles(42));
        let json = serde_json::to_string(&tree).unwrap();
        assert_eq!(json, r#"{"triangles":42}"#);
    }

    #[test]
    fn full_config_rides_the_wire() {
        let json = serde_json::to_string(&BspConfig {
            max_supersteps: 3,
            pull_threshold: 0.25,
            beamer_alpha: 7.5,
            beamer_beta: 9.0,
            ..BspConfig::default()
        })
        .unwrap();
        let line = format!(
            r#"{{"op":"submit","algorithm":"pagerank","engine":"graphct","graph":"g","config":{json},"priority":5,"deadline_ms":250}}"#
        );
        let Request::Submit { spec } = parse(&line).unwrap() else {
            panic!("wrong op");
        };
        assert_eq!(spec.engine, Engine::GraphCt);
        assert_eq!(spec.config.max_supersteps, 3);
        assert_eq!(spec.config.pull_threshold, 0.25);
        assert_eq!(spec.config.beamer_alpha, 7.5);
        assert_eq!(spec.config.beamer_beta, 9.0);
        assert_eq!(spec.priority, 5);
        assert_eq!(spec.deadline_ms, Some(250));
    }

    #[test]
    fn intersect_shortcut_sets_strategy() {
        // Shortcut field, lowercase CLI spelling.
        let Request::Submit { spec } =
            parse(r#"{"op":"submit","algorithm":"tc","graph":"g","intersect":"hash"}"#).unwrap()
        else {
            panic!("wrong op");
        };
        assert_eq!(spec.config.intersect, IntersectStrategy::Hash);
        // Default when absent.
        let Request::Submit { spec } =
            parse(r#"{"op":"submit","algorithm":"tc","graph":"g"}"#).unwrap()
        else {
            panic!("wrong op");
        };
        assert_eq!(spec.config.intersect, IntersectStrategy::Auto);
        // A full config also carries the strategy (wire variant name).
        let json = serde_json::to_string(&BspConfig {
            intersect: IntersectStrategy::BinSearch,
            ..BspConfig::default()
        })
        .unwrap();
        assert!(json.contains("\"BinSearch\""));
        let line = format!(r#"{{"op":"submit","algorithm":"tc","graph":"g","config":{json}}}"#);
        let Request::Submit { spec } = parse(&line).unwrap() else {
            panic!("wrong op");
        };
        assert_eq!(spec.config.intersect, IntersectStrategy::BinSearch);
    }

    #[test]
    fn unknown_intersect_strategy_is_invalid_config() {
        let err = parse(r#"{"op":"submit","algorithm":"tc","graph":"g","intersect":"quadratic"}"#)
            .unwrap_err();
        assert_eq!(err.code(), "invalid_config");
        let ServiceError::InvalidConfig { field, reason } = &err else {
            panic!("wrong variant");
        };
        assert_eq!(*field, "intersect");
        assert!(reason.contains("quadratic"), "{reason}");
    }

    #[test]
    fn negative_tuning_params_are_rejected_at_admission() {
        for (field, config) in [
            (
                "pull_threshold",
                BspConfig {
                    pull_threshold: -0.5,
                    ..BspConfig::default()
                },
            ),
            (
                "beamer_alpha",
                BspConfig {
                    beamer_alpha: -1.0,
                    ..BspConfig::default()
                },
            ),
            (
                "beamer_beta",
                BspConfig {
                    beamer_beta: -18.0,
                    ..BspConfig::default()
                },
            ),
        ] {
            let json = serde_json::to_string(&config).unwrap();
            let line = format!(r#"{{"op":"submit","algorithm":"cc","graph":"g","config":{json}}}"#);
            let err = parse(&line).unwrap_err();
            assert_eq!(err.code(), "invalid_config", "field `{field}`");
            assert!(
                err.to_string().contains(field),
                "`{err}` should name `{field}`"
            );
        }
        // Zero is a legal value for every tuning knob (alpha 0.0 is the
        // documented Beamer escape hatch).
        let json = serde_json::to_string(&BspConfig {
            pull_threshold: 0.0,
            beamer_alpha: 0.0,
            beamer_beta: 0.0,
            ..BspConfig::default()
        })
        .unwrap();
        let line = format!(r#"{{"op":"submit","algorithm":"cc","graph":"g","config":{json}}}"#);
        assert!(parse(&line).is_ok());
    }

    #[test]
    fn non_finite_tuning_params_are_rejected_at_admission() {
        // JSON itself cannot carry NaN/inf, so exercise the validator
        // directly: it is the last gate before the queue.
        for (field, config) in [
            (
                "pull_threshold",
                BspConfig {
                    pull_threshold: f64::NAN,
                    ..BspConfig::default()
                },
            ),
            (
                "beamer_alpha",
                BspConfig {
                    beamer_alpha: f64::INFINITY,
                    ..BspConfig::default()
                },
            ),
            (
                "beamer_beta",
                BspConfig {
                    beamer_beta: f64::NEG_INFINITY,
                    ..BspConfig::default()
                },
            ),
        ] {
            let err = validate_config(&config).unwrap_err();
            assert_eq!(err.code(), "invalid_config", "field `{field}`");
            let ServiceError::InvalidConfig { field: got, .. } = err else {
                panic!("wrong variant");
            };
            assert_eq!(got, field);
        }
        assert!(validate_config(&BspConfig::default()).is_ok());
    }

    #[test]
    fn unknown_op_and_missing_fields_are_bad_requests() {
        assert_eq!(parse(r#"{"op":"nope"}"#).unwrap_err().code(), "bad_request");
        assert_eq!(
            parse(r#"{"op":"submit","graph":"g"}"#).unwrap_err().code(),
            "bad_request"
        );
        assert_eq!(
            parse(r#"{"op":"status"}"#).unwrap_err().code(),
            "bad_request"
        );
    }

    #[test]
    fn graph_specs_build() {
        let spec = GraphSpec {
            kind: "path".to_string(),
            scale: 0,
            edge_factor: 0,
            n: 5,
            m: 0,
            seed: 0,
        };
        assert_eq!(build_graph(&spec).unwrap().num_vertices(), 5);
        let rmat = GraphSpec {
            kind: "rmat".to_string(),
            scale: 6,
            edge_factor: 4,
            n: 0,
            m: 0,
            seed: 7,
        };
        assert_eq!(build_graph(&rmat).unwrap().num_vertices(), 64);
        let nope = GraphSpec {
            kind: "torus".to_string(),
            ..spec
        };
        assert_eq!(build_graph(&nope).unwrap_err().code(), "bad_request");
    }

    #[test]
    fn error_responses_carry_stable_codes() {
        let tree = error_response(&ServiceError::QueueFull { capacity: 4 });
        let json = serde_json::to_string(&tree).unwrap();
        assert!(json.contains(r#""code":"queue_full""#), "{json}");
        assert!(json.contains(r#""status":"error""#), "{json}");
    }
}
