//! k-core decomposition (one of the GraphCT toolkit kernels the paper
//! lists in §II).
//!
//! Parallel peeling: repeatedly remove all vertices whose residual degree
//! is below `k`, for increasing `k`; a vertex's core number is the last
//! `k` at which it survived.

use std::sync::atomic::{AtomicU64, Ordering};

use xmt_graph::Csr;
use xmt_par::parallel_for;

/// Core number of every vertex.
pub fn kcore_decomposition(g: &Csr) -> Vec<u64> {
    assert!(!g.is_directed(), "k-core requires an undirected graph");
    let n = g.num_vertices() as usize;
    let deg: Vec<AtomicU64> = (0..n).map(|v| AtomicU64::new(g.degree(v as u64))).collect();
    let core: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let alive: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(1)).collect();
    let mut remaining = n as u64;

    let mut k = 0u64;
    while remaining > 0 {
        k += 1;
        // Peel everything of degree < k, cascading within this k.
        loop {
            let removed = AtomicU64::new(0);
            parallel_for(0, n, |v| {
                // Relaxed (whole peel sweep): degrees only decrease and
                // the swap elects exactly one remover per vertex; a stale
                // degree read just defers the peel to the next cascade
                // round, which repeats until a sweep removes nothing.
                if alive[v].load(Ordering::Relaxed) == 1
                    // Relaxed: monotone degree, re-checked next round.
                    && deg[v].load(Ordering::Relaxed) < k
                    // Relaxed: RMW atomicity alone elects the remover.
                    && alive[v].swap(0, Ordering::Relaxed) == 1
                {
                    // Relaxed: sole writer (elected above); read post-join.
                    core[v].store(k - 1, Ordering::Relaxed);
                    removed.fetch_add(1, Ordering::Relaxed); // Relaxed: counter, read post-join
                    for &u in g.neighbors(v as u64) {
                        // Relaxed: monotone decrement, atomicity suffices.
                        deg[u as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
            // Relaxed: the sweep joined; all updates happen-before this.
            let r = removed.load(Ordering::Relaxed);
            if r == 0 {
                break;
            }
            remaining -= r;
        }
    }

    core.into_iter().map(AtomicU64::into_inner).collect()
}

/// Vertices belonging to the `k`-core (core number >= k).
pub fn kcore_members(core: &[u64], k: u64) -> Vec<u64> {
    core.iter()
        .enumerate()
        .filter(|&(_, &c)| c >= k)
        .map(|(v, _)| v as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::{bridged_cliques, clique, path, ring, star};

    #[test]
    fn clique_core_is_n_minus_one() {
        let g = build_undirected(&clique(6));
        let core = kcore_decomposition(&g);
        assert!(core.iter().all(|&c| c == 5));
    }

    #[test]
    fn path_core_is_one() {
        let g = build_undirected(&path(10));
        let core = kcore_decomposition(&g);
        assert!(core.iter().all(|&c| c == 1));
    }

    #[test]
    fn ring_core_is_two() {
        let g = build_undirected(&ring(10));
        let core = kcore_decomposition(&g);
        assert!(core.iter().all(|&c| c == 2));
    }

    #[test]
    fn star_core_is_one_everywhere() {
        // Peeling the leaves leaves the center with degree 0.
        let g = build_undirected(&star(10));
        let core = kcore_decomposition(&g);
        assert!(core.iter().all(|&c| c == 1), "{core:?}");
    }

    #[test]
    fn bridged_cliques_keep_their_core() {
        let g = build_undirected(&bridged_cliques(5));
        let core = kcore_decomposition(&g);
        // All clique members have core 4; the bridge does not raise it.
        assert!(core.iter().all(|&c| c == 4), "{core:?}");
        assert_eq!(kcore_members(&core, 4).len(), 10);
        assert!(kcore_members(&core, 5).is_empty());
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let mut el = xmt_graph::EdgeList::new(5);
        el.push(0, 1);
        let g = build_undirected(&el);
        let core = kcore_decomposition(&g);
        assert_eq!(core[0], 1);
        assert_eq!(core[1], 1);
        assert_eq!(core[2], 0);
    }

    #[test]
    fn core_number_is_at_most_degree() {
        let el = xmt_graph::gen::er::gnm(300, 1500, 2);
        let g = build_undirected(&el);
        let core = kcore_decomposition(&g);
        for v in 0..g.num_vertices() {
            assert!(core[v as usize] <= g.degree(v));
        }
    }
}
