//! Shared-memory connected components (Shiloach-Vishkin style).
//!
//! The paper (§III): "The shared memory algorithm in GraphCT, based on
//! Shiloach-Vishkin, considers all edges in all iterations.  When a new
//! component label is found, the label is updated and available to be
//! read by other threads.  In this way, new component labels can
//! propagate the graph within an iteration."
//!
//! Each iteration sweeps every arc, hooking the larger label onto the
//! smaller with an atomic min, then pointer-jumps every vertex's label to
//! its representative's label (compress).  Because updated labels are
//! immediately visible, convergence takes far fewer iterations than the
//! BSP variant — 6 vs 13 on the paper's RMAT graph.

use std::sync::atomic::{AtomicU64, Ordering};

use xmt_graph::{Csr, VertexId};
use xmt_model::{PhaseCounts, Recorder};
use xmt_par::atomic::fetch_min;
use xmt_par::{parallel_for, Executor};

/// Compute component labels (each vertex gets the minimum vertex id of
/// its component).
pub fn connected_components(g: &Csr) -> Vec<VertexId> {
    run(g, &mut None, None, &Executor::fixed())
}

/// As [`connected_components`] on an explicit [`Executor`] — the native
/// engine's entry point.  Labels are identical across executors (the
/// atomic-min hook is order-independent); only the sweep count until
/// fixpoint may differ by a race.
pub fn connected_components_exec(g: &Csr, exec: &Executor) -> Vec<VertexId> {
    run(g, &mut None, None, exec)
}

/// As [`connected_components`], recording one `"iteration"` phase per
/// sweep (observed = number of label updates in the sweep).
pub fn connected_components_instrumented(g: &Csr, rec: &mut Recorder) -> Vec<VertexId> {
    run(g, &mut Some(rec), None, &Executor::fixed())
}

/// As [`connected_components`], appending one wall-clock trace record
/// per sweep to `sink` (active = vertices swept, messages = label
/// updates) so the GraphCT side yields the same Fig. 1-shaped series as
/// a BSP run.  No-op when the `trace` feature is off.
pub fn connected_components_traced(g: &Csr, sink: &mut xmt_trace::TraceSink) -> Vec<VertexId> {
    run(g, &mut None, Some(sink), &Executor::fixed())
}

fn run(
    g: &Csr,
    rec: &mut Option<&mut Recorder>,
    mut sink: Option<&mut xmt_trace::TraceSink>,
    exec: &Executor,
) -> Vec<VertexId> {
    assert!(!g.is_directed(), "components require an undirected graph");
    let workers = exec.workers();
    // Const-folds to `false` in feature-off builds: no clocks, no
    // records, hot sweeps unchanged.
    let tracing = xmt_trace::ENABLED && sink.is_some();
    let n = g.num_vertices() as usize;
    let labels: Vec<AtomicU64> = (0..n).map(|v| AtomicU64::new(v as u64)).collect();

    // Init phase: one write per vertex.
    if let Some(r) = rec.as_deref_mut() {
        let mut c = PhaseCounts::with_items(n as u64);
        c.writes = n as u64;
        c.charge_loop_overhead(chunk(n, workers));
        c.barriers = 1;
        r.push("init", 0, c, n as u64);
    }

    let mut iteration = 0u64;
    loop {
        let changed = AtomicU64::new(0);
        let mut sweep_watch = tracing.then(xmt_trace::Stopwatch::start);

        // Hook: for every arc (u, v) pull the smaller label across.
        // Updated labels are read by later arcs in the SAME sweep —
        // the label-propagation behaviour the paper highlights.
        exec.pfor(0, n, |v| {
            // Relaxed (all label loads in this sweep): deliberately racy
            // reads of a monotonically decreasing label array — a stale
            // value can only delay convergence, never corrupt it, and
            // the fixpoint loop re-checks until no sweep changes a label.
            let lv = labels[v].load(Ordering::Relaxed);
            for &u in g.neighbors(v as u64) {
                let lu = labels[u as usize].load(Ordering::Relaxed); // Relaxed: monotone label race, see above
                if lu < lv {
                    if fetch_min(&labels[v], lu) {
                        // Relaxed: convergence counter, read post-join.
                        changed.fetch_add(1, Ordering::Relaxed);
                    }
                } else if lv < lu && fetch_min(&labels[u as usize], lv) {
                    changed.fetch_add(1, Ordering::Relaxed); // Relaxed: counter, read post-join
                }
            }
        });

        let hook_ns = sweep_watch.as_mut().map_or(0, xmt_trace::Stopwatch::lap_ns);

        // Compress: pointer-jump labels to their representative.
        let jumps = AtomicU64::new(0);
        exec.pfor(0, n, |v| {
            // Relaxed: same monotone-label argument as the hook sweep —
            // stale reads chase a shorter chain, the next sweep retries.
            let mut l = labels[v].load(Ordering::Relaxed);
            let mut hops = 0u64;
            loop {
                let ll = labels[l as usize].load(Ordering::Relaxed); // Relaxed: monotone label race
                if ll == l {
                    break;
                }
                l = ll;
                hops += 1;
            }
            if hops > 0 {
                // Relaxed: only ever lowers the label; read post-join.
                labels[v].store(l, Ordering::Relaxed);
                jumps.fetch_add(hops, Ordering::Relaxed); // Relaxed: stats, read post-join
            }
        });

        // Relaxed: both sweeps joined above; all counter updates
        // happen-before these reads.
        let changed = changed.load(Ordering::Relaxed);
        if let Some(r) = rec.as_deref_mut() {
            let arcs = g.num_arcs();
            let mut c = PhaseCounts::with_items(arcs.max(n as u64));
            // Hook sweep: read L[v] once per vertex, L[u] per arc,
            // a compare per arc, an atomic min per improvement.
            c.reads = n as u64 + arcs;
            c.alu_ops = arcs;
            c.atomics = changed;
            // Compress: each vertex reads its own label and its
            // representative's label at least once; extra reads per hop.
            c.reads += 2 * n as u64 + jumps.load(Ordering::Relaxed); // Relaxed: post-join read
            c.writes += jumps.load(Ordering::Relaxed).min(n as u64); // Relaxed: post-join read
            c.charge_loop_overhead(chunk(n, workers));
            c.barriers = 2; // hook and compress are separate sweeps
            r.push("iteration", iteration, c, changed);
        }
        if tracing {
            if let Some(sk) = sink.as_deref_mut() {
                // Hook is the compute phase, compress the exchange-like
                // cleanup; every sweep touches all n vertices (the
                // "considers all edges in all iterations" shape the
                // per-iteration figure exists to show).
                let compress_ns = sweep_watch.as_mut().map_or(0, xmt_trace::Stopwatch::lap_ns);
                sk.record(xmt_trace::SuperstepTrace {
                    superstep: iteration,
                    active: n as u64,
                    messages_sent: changed,
                    messages_generated: g.num_arcs(),
                    messages_delivered: changed,
                    compute_ns: hook_ns,
                    exchange_ns: compress_ns,
                    total_ns: hook_ns + compress_ns,
                    ..xmt_trace::SuperstepTrace::default()
                });
            }
        }
        iteration += 1;
        if changed == 0 {
            break;
        }
    }

    labels.into_iter().map(AtomicU64::into_inner).collect()
}

/// Double-buffered ("Jacobi") label propagation: every sweep reads the
/// *previous* sweep's labels only, exactly like a BSP superstep.
///
/// This isolates the paper's §VI mechanism: "once a vertex discovers its
/// label has changed, that new information is available to all of its
/// neighbors immediately" in the shared-memory (Gauss-Seidel-style)
/// algorithm, but not in BSP.  With the propagation disabled, the
/// iteration count roughly doubles — compare via `ablation_labelprop`.
pub fn connected_components_jacobi(g: &Csr, mut rec: Option<&mut Recorder>) -> Vec<VertexId> {
    assert!(!g.is_directed(), "components require an undirected graph");
    let n = g.num_vertices() as usize;
    let mut current: Vec<VertexId> = (0..n as u64).collect();
    let mut next: Vec<VertexId> = current.clone();

    if let Some(r) = rec.as_deref_mut() {
        let mut c = PhaseCounts::with_items(n as u64);
        c.writes = 2 * n as u64;
        c.charge_loop_overhead(chunk(n, xmt_par::num_threads()));
        c.barriers = 1;
        r.push("init", 0, c, n as u64);
    }

    let mut iteration = 0u64;
    loop {
        let changed = AtomicU64::new(0);
        {
            let current_ref = &current;
            let next_base = next.as_mut_ptr() as usize;
            parallel_for(0, n, |v| {
                let mut best = current_ref[v];
                for &u in g.neighbors(v as u64) {
                    best = best.min(current_ref[u as usize]);
                }
                // Pointer-jump through the *old* labels (still stale data).
                let mut l = best;
                loop {
                    let ll = current_ref[l as usize];
                    if ll >= l {
                        break;
                    }
                    l = ll;
                }
                if l != current_ref[v] {
                    // Relaxed: convergence counter, read post-join.
                    changed.fetch_add(1, Ordering::Relaxed);
                }
                // SAFETY: one writer per index.
                unsafe { *(next_base as *mut VertexId).add(v) = l };
            });
        }
        // Relaxed: the sweep joined above; updates happen-before this.
        let changed = changed.load(Ordering::Relaxed);
        if let Some(r) = rec.as_deref_mut() {
            let arcs = g.num_arcs();
            let mut c = PhaseCounts::with_items(arcs.max(n as u64));
            c.reads = n as u64 + arcs + 2 * n as u64;
            c.alu_ops = arcs;
            c.writes = n as u64;
            c.charge_loop_overhead(chunk(n, xmt_par::num_threads()));
            c.barriers = 1;
            r.push("iteration", iteration, c, changed);
        }
        std::mem::swap(&mut current, &mut next);
        iteration += 1;
        if changed == 0 {
            break;
        }
    }
    current
}

fn chunk(n: usize, workers: usize) -> u64 {
    xmt_par::pfor::default_chunk(n, workers) as u64
}

/// Number of distinct components in a labeling.
pub fn count_components(labels: &[VertexId]) -> u64 {
    labels
        .iter()
        .enumerate()
        .filter(|&(v, &l)| v as u64 == l)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::{bridged_cliques, disjoint_cliques, path, ring, star};
    use xmt_graph::validate::validate_components;

    #[test]
    fn single_component_families() {
        for el in [path(50), ring(33), star(40)] {
            let g = build_undirected(&el);
            let labels = connected_components(&g);
            validate_components(&g, &labels).unwrap();
            assert_eq!(count_components(&labels), 1);
        }
    }

    #[test]
    fn disjoint_cliques_have_k_components() {
        let g = build_undirected(&disjoint_cliques(7, 5));
        let labels = connected_components(&g);
        validate_components(&g, &labels).unwrap();
        assert_eq!(count_components(&labels), 7);
    }

    #[test]
    fn bridge_merges_components() {
        let g = build_undirected(&bridged_cliques(6));
        let labels = connected_components(&g);
        assert_eq!(count_components(&labels), 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let mut el = xmt_graph::EdgeList::new(10);
        el.push(2, 3);
        let g = build_undirected(&el);
        let labels = connected_components(&g);
        validate_components(&g, &labels).unwrap();
        assert_eq!(count_components(&labels), 9);
    }

    #[test]
    fn matches_serial_reference_on_random_graph() {
        let el = xmt_graph::gen::er::gnm(2000, 3000, 11);
        let g = build_undirected(&el);
        let labels = connected_components(&g);
        let reference = xmt_graph::validate::reference_components(&g);
        assert_eq!(labels, reference);
    }

    #[test]
    fn instrumented_run_records_iterations() {
        let g = build_undirected(&path(1000));
        let mut rec = Recorder::new();
        let labels = connected_components_instrumented(&g, &mut rec);
        validate_components(&g, &labels).unwrap();
        let iters = rec.steps("iteration");
        assert!(iters >= 2, "a path needs multiple sweeps");
        // Last iteration observed 0 changes (the convergence check).
        let last = rec.with_label("iteration").last().unwrap();
        assert_eq!(last.observed, 0);
        // Work per iteration is roughly constant (the paper's point about
        // the shared-memory algorithm's execution profile).
        let reads: Vec<u64> = rec
            .with_label("iteration")
            .map(|r| r.counts.reads)
            .collect();
        let min = *reads.iter().min().unwrap() as f64;
        let max = *reads.iter().max().unwrap() as f64;
        assert!(max / min < 3.0, "per-iteration work should be flat");
    }

    #[test]
    fn jacobi_variant_matches_but_needs_more_iterations() {
        let g = build_undirected(&path(128));
        let mut gs_rec = Recorder::new();
        let gauss_seidel = connected_components_instrumented(&g, &mut gs_rec);
        let mut j_rec = Recorder::new();
        let jacobi = connected_components_jacobi(&g, Some(&mut j_rec));
        assert_eq!(gauss_seidel, jacobi);
        validate_components(&g, &jacobi).unwrap();
        assert!(
            j_rec.steps("iteration") > gs_rec.steps("iteration"),
            "jacobi {} vs gauss-seidel {}",
            j_rec.steps("iteration"),
            gs_rec.steps("iteration")
        );
    }

    #[test]
    fn jacobi_variant_validates_on_random_graphs() {
        for seed in 0..3 {
            let el = xmt_graph::gen::er::gnm(800, 1600, seed);
            let g = build_undirected(&el);
            let labels = connected_components_jacobi(&g, None);
            validate_components(&g, &labels).unwrap();
            assert_eq!(labels, connected_components(&g));
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_run_yields_one_record_per_iteration() {
        let g = build_undirected(&path(1000));
        let mut rec = Recorder::new();
        let reference = connected_components_instrumented(&g, &mut rec);
        let mut sink = xmt_trace::TraceSink::new();
        let labels = connected_components_traced(&g, &mut sink);
        assert_eq!(labels, reference);
        let trace = sink.finish();
        assert_eq!(trace.len() as u64, rec.steps("iteration"));
        for (i, t) in trace.iter().enumerate() {
            assert_eq!(t.superstep, i as u64);
            assert_eq!(t.active, 1000);
            assert_eq!(t.total_ns, t.compute_ns + t.exchange_ns);
        }
        // The convergence sweep changes nothing.
        assert_eq!(trace.last().unwrap().messages_sent, 0);
    }

    #[test]
    fn label_propagation_converges_quickly_on_small_world() {
        // RMAT graphs converge in a handful of iterations.
        let p = xmt_graph::gen::rmat::RmatParams::graph500(12);
        let el = xmt_graph::gen::rmat::rmat_edges(&p, 3);
        let g = build_undirected(&el);
        let mut rec = Recorder::new();
        let labels = connected_components_instrumented(&g, &mut rec);
        validate_components(&g, &labels).unwrap();
        assert!(
            rec.steps("iteration") <= 8,
            "took {} iterations",
            rec.steps("iteration")
        );
    }
}
