//! GraphCT-style shared-memory graph kernels — the paper's baseline.
//!
//! GraphCT is the open-source multithreaded graph toolkit the paper uses
//! as its hand-tuned shared-memory reference.  This crate re-implements
//! the three kernels the paper measures, in the same algorithmic style
//! (loop-level parallelism, atomic fetch-and-add, immediate visibility of
//! updates), plus the surrounding toolkit capabilities the paper lists
//! (§II: "clustering coefficients, connected components, betweenness
//! centrality, k-core, and others"):
//!
//! * [`components`] — Shiloach-Vishkin-style connected components with
//!   in-iteration label propagation (§III);
//! * [`bfs`] — level-synchronous breadth-first search with a shared
//!   frontier queue (§IV);
//! * [`triangles`] — triangle counting and clustering coefficients by
//!   sorted-adjacency intersection (§V);
//! * [`kcore`], [`betweenness`], [`pagerank`], [`sssp`] — toolkit extras;
//! * [`workflow`] — the chained-analysis driver (one read-only graph,
//!   a series of kernel calls, an accumulated report).
//!
//! Every kernel has an `*_instrumented` variant that records exact
//! per-iteration operation counts into an [`xmt_model::Recorder`]; the
//! analytic machine model turns those into Cray XMT time predictions.
//!
//! # Example: a GraphCT workflow
//!
//! ```
//! use xmt_graph::builder::build_undirected;
//! use xmt_graph::gen::structured::bridged_cliques;
//!
//! // Two 5-cliques joined by a bridge.
//! let g = build_undirected(&bridged_cliques(5));
//!
//! let labels = graphct::connected_components(&g);
//! assert!(labels.iter().all(|&l| l == 0), "one component");
//!
//! let bfs = graphct::bfs(&g, 0);
//! assert_eq!(bfs.dist[9], 3, "across the bridge");
//!
//! let (cc, triangles) = graphct::clustering_coefficients(&g);
//! assert_eq!(triangles, 2 * 10, "two K5s");
//! assert!(cc[0] > 0.9, "clique members are tightly clustered");
//!
//! let core = graphct::kcore_decomposition(&g);
//! assert!(core.iter().all(|&k| k == 4), "each clique is a 4-core");
//! ```

pub mod betweenness;
pub mod bfs;
pub mod components;
pub mod kcore;
pub mod pagerank;
pub mod sssp;
pub mod triangles;
pub mod workflow;

pub use betweenness::betweenness_centrality;
pub use bfs::{bfs, bfs_exec, bfs_instrumented, bfs_traced, BfsResult};
pub use components::{
    connected_components, connected_components_exec, connected_components_instrumented,
    connected_components_jacobi, connected_components_traced,
};
pub use kcore::kcore_decomposition;
pub use pagerank::pagerank;
pub use sssp::sssp;
pub use triangles::{
    clustering_coefficients, clustering_coefficients_with, count_triangles,
    count_triangles_binsearch, count_triangles_dag, count_triangles_exec, count_triangles_idorder,
    count_triangles_instrumented, count_triangles_with, TcScratch,
};
pub use workflow::Workflow;
pub use xmt_graph::IntersectStrategy;
