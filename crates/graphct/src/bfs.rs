//! Level-synchronous shared-memory breadth-first search.
//!
//! The paper (§IV): the shared-memory algorithm "enqueues only those
//! vertices that are definitively unmarked and on the frontier" and
//! "only places one copy of each vertex" — discovery is decided by an
//! atomic claim on the distance word, and winners are appended to the
//! next-frontier queue through a shared fetch-and-add cursor (the mild
//! hotspot responsible for the reduced scalability at 128 processors in
//! Fig. 3).
//!
//! Levels are direction-optimized (Beamer): when the frontier's edges
//! outgrow the unexplored edges by `BEAMER_ALPHA`, the level flips to a
//! bottom-up expansion — every *unvisited* vertex probes its neighbors
//! against a dense frontier bitmap and stops at the first hit — and
//! flips back once the frontier thins below `1 / BEAMER_BETA` of the
//! vertices.  Distances and frontier sizes are identical to pure
//! top-down; only the parents (any valid BFS tree) and the edge-probe
//! counts differ.  The same alpha/beta hysteresis drives the BSP
//! engine's `Delivery::Auto`.

use std::sync::atomic::{AtomicU64, Ordering};

use xmt_graph::{Csr, VertexId, NO_VERTEX};
use xmt_model::{PhaseCounts, Recorder};
use xmt_par::atomic::claim;
use xmt_par::Executor;

/// Distances and BFS-tree parents from a source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// `dist[v]` is the hop count from the source (`u64::MAX` if
    /// unreachable).
    pub dist: Vec<u64>,
    /// `parent[v]` is the BFS-tree parent (`NO_VERTEX` if unreachable;
    /// the source is its own parent).
    pub parent: Vec<VertexId>,
    /// Frontier size at each level, starting with level 0 (the source).
    pub frontier_sizes: Vec<u64>,
}

/// Level-synchronous BFS from `source`.
pub fn bfs(g: &Csr, source: VertexId) -> BfsResult {
    run(g, source, &mut None, None, &Executor::fixed())
}

/// As [`bfs`] on an explicit [`Executor`] — the native engine's entry
/// point (guided chunking, optionally a pinned pool).  Distances are
/// identical across executors; parents and frontier order may differ
/// where several discoverers race (any valid BFS tree).
pub fn bfs_exec(g: &Csr, source: VertexId, exec: &Executor) -> BfsResult {
    run(g, source, &mut None, None, exec)
}

/// As [`bfs`], recording one `"level"` phase per frontier expansion
/// (observed = frontier size entering the level).
pub fn bfs_instrumented(g: &Csr, source: VertexId, rec: &mut Recorder) -> BfsResult {
    run(g, source, &mut Some(rec), None, &Executor::fixed())
}

/// As [`bfs`], appending one wall-clock trace record per level to
/// `sink` (active = frontier size, messages = discoveries) so the
/// GraphCT side yields the same Fig. 2-shaped series as a BSP run.
/// No-op when the `trace` feature is off.
pub fn bfs_traced(g: &Csr, source: VertexId, sink: &mut xmt_trace::TraceSink) -> BfsResult {
    run(g, source, &mut None, Some(sink), &Executor::fixed())
}

/// Beamer top-down→bottom-up switch ratio (GAP default), mirroring
/// `BspConfig::beamer_alpha`.
const BEAMER_ALPHA: f64 = 15.0;
/// Beamer bottom-up→top-down switch ratio (GAP default), mirroring
/// `BspConfig::beamer_beta`.
const BEAMER_BETA: f64 = 18.0;

fn run(
    g: &Csr,
    source: VertexId,
    rec: &mut Option<&mut Recorder>,
    mut sink: Option<&mut xmt_trace::TraceSink>,
    exec: &Executor,
) -> BfsResult {
    let workers = exec.workers();
    // Const-folds to `false` in feature-off builds: no clocks, no
    // records, hot loop unchanged.
    let tracing = xmt_trace::ENABLED && sink.is_some();
    let n = g.num_vertices() as usize;
    assert!((source as usize) < n, "source out of range");

    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let parent: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NO_VERTEX)).collect();

    if let Some(r) = rec.as_deref_mut() {
        let mut c = PhaseCounts::with_items(n as u64);
        c.writes = 2 * n as u64; // dist + parent initialization
        c.charge_loop_overhead(chunk(n, workers));
        c.barriers = 1;
        r.push("init", 0, c, 0);
    }

    // Relaxed: sequential code — the pool has not been handed these
    // arrays yet; the broadcast that starts the level publishes them.
    dist[source as usize].store(0, Ordering::Relaxed);
    parent[source as usize].store(source, Ordering::Relaxed); // Relaxed: pre-broadcast

    // Frontier buffer sized for the worst case (every vertex discovered
    // in one level) so the per-level refill below never reallocates —
    // each level reuses this one vector plus the `next` queue.
    let mut frontier: Vec<VertexId> = Vec::with_capacity(n);
    frontier.push(source);
    let mut frontier_sizes = vec![1u64];
    let mut level = 0u64;
    // Next-frontier queue, reused across levels; appended through a
    // shared fetch-and-add cursor.  Zeroed allocation, viewed as atomics.
    let mut next_storage = vec![0u64; n];
    let next: &[AtomicU64] = xmt_par::atomic::as_atomic_u64(&mut next_storage);
    // Frontier-membership bitmap for bottom-up levels (one bit per
    // vertex), allocated once and rebuilt per bottom-up level.
    let mut bits_storage = vec![0u64; n.div_ceil(64)];
    let frontier_bits: &[AtomicU64] = xmt_par::atomic::as_atomic_u64(&mut bits_storage);
    let total_arcs = g.degree_sum();
    // Edges incident on every frontier so far (each vertex enters the
    // frontier at most once, so this never exceeds `total_arcs`).
    let mut explored: u64 = 0;
    let mut bottom_up = false;

    while !frontier.is_empty() {
        // Direction decision with Beamer hysteresis: flip to bottom-up
        // when the frontier's edges outweigh the unexplored edges by
        // alpha, flip back when the frontier thins below n / beta.
        let frontier_deg: u64 = frontier.iter().map(|&v| g.degree(v)).sum();
        explored += frontier_deg;
        bottom_up = if bottom_up {
            frontier.len() as f64 * BEAMER_BETA >= n as f64
        } else {
            let unexplored = total_arcs.saturating_sub(explored);
            frontier_deg as f64 * BEAMER_ALPHA > unexplored as f64
        };

        let cursor = AtomicU64::new(0);
        let edges_scanned = AtomicU64::new(0);
        let mut level_watch = tracing.then(xmt_trace::Stopwatch::start);

        if bottom_up {
            // Rebuild the frontier bitmap (zero the words, then set one
            // bit per frontier vertex).
            exec.pfor(0, frontier_bits.len(), |w| {
                // Relaxed: each word rewritten before the build join that
                // publishes the bitmap to the probe loop.
                frontier_bits[w].store(0, Ordering::Relaxed);
            });
            {
                let frontier_ref = &frontier;
                exec.pfor(0, frontier_ref.len(), |i| {
                    let v = frontier_ref[i];
                    // Relaxed: bit sets commute; the pfor join publishes.
                    frontier_bits[(v >> 6) as usize].fetch_or(1 << (v & 63), Ordering::Relaxed);
                });
            }
            // Bottom-up expansion: every unvisited vertex probes its
            // neighbors against the bitmap and claims itself at the
            // first hit — no dist race (each vertex is written only by
            // its own iteration) and one queue append per discovery.
            exec.pfor(0, n, |vi| {
                // Relaxed: dist writes preceded the previous level's
                // join; this level writes vi's slot only from here.
                if dist[vi].load(Ordering::Relaxed) != u64::MAX {
                    return;
                }
                let v = vi as u64;
                let mut probes = 0u64;
                for &u in g.neighbors(v) {
                    probes += 1;
                    let word = u as usize >> 6;
                    // Relaxed: the bitmap was published by the build join.
                    let hit = frontier_bits[word].load(Ordering::Relaxed) >> (u & 63) & 1;
                    if hit == 1 {
                        // This iteration is the sole writer of vi's
                        // dist/parent; the level-ending join publishes.
                        dist[vi].store(level + 1, Ordering::Relaxed); // Relaxed: sole writer
                        parent[vi].store(u, Ordering::Relaxed); // Relaxed: sole writer
                        let slot = cursor.fetch_add(1, Ordering::Relaxed) as usize; // Relaxed: slot reservation only
                        next[slot].store(v, Ordering::Relaxed); // Relaxed: read post-join
                        break;
                    }
                }
                if probes > 0 {
                    // Relaxed: statistics counter, read after the join.
                    edges_scanned.fetch_add(probes, Ordering::Relaxed);
                }
            });
        } else {
            let frontier_ref = &frontier;
            exec.pfor(0, frontier_ref.len(), |i| {
                let v = frontier_ref[i];
                let d = level + 1;
                let nbrs = g.neighbors(v);
                // Relaxed: statistics counter, read after the join.
                edges_scanned.fetch_add(nbrs.len() as u64, Ordering::Relaxed);
                for &u in nbrs {
                    // Claim the distance word: exactly one discoverer wins.
                    if claim(&dist[u as usize], u64::MAX, d) {
                        // Relaxed: the claim above made this thread the
                        // sole writer of u's parent and queue slot; the
                        // level-ending join publishes both.
                        parent[u as usize].store(v, Ordering::Relaxed);
                        let slot = cursor.fetch_add(1, Ordering::Relaxed) as usize; // Relaxed: slot reservation only
                        next[slot].store(u, Ordering::Relaxed); // Relaxed: read post-join
                    }
                }
            });
        }

        // Relaxed: the level's parallel_for joined; every fetch_add
        // happens-before this read.
        let next_len = cursor.load(Ordering::Relaxed) as usize;
        let discovered = next_len as u64;
        if let Some(r) = rec.as_deref_mut() {
            let scanned = edges_scanned.load(Ordering::Relaxed); // Relaxed: post-join read
            let mut c = if bottom_up {
                // Bottom-up: one dist probe per vertex, neighbor id +
                // frontier bit per edge probed; per discovery a plain
                // dist/parent/queue write (the claim is implicit — each
                // vertex writes only itself) with the queue cursor as
                // the hotspot; the bitmap build pays one atomic OR per
                // frontier vertex and a word-zeroing sweep.
                let mut c = PhaseCounts::with_items(scanned.max(n as u64));
                c.reads = n as u64 + 2 * scanned;
                c.alu_ops = scanned;
                c.atomics = discovered + frontier.len() as u64;
                c.writes = 3 * discovered + frontier_bits.len() as u64;
                c.hotspot_ops = discovered;
                c.charge_loop_overhead(chunk(n, workers));
                c
            } else {
                // Per frontier vertex: offsets read; per edge: neighbor
                // id + dist probe; per discovery: dist claim + parent
                // write + queue write, with the queue cursor as the
                // hotspot.
                let mut c = PhaseCounts::with_items(scanned.max(frontier.len() as u64));
                c.reads = frontier.len() as u64 + 2 * scanned;
                c.alu_ops = scanned;
                c.atomics = discovered;
                c.writes = 2 * discovered;
                c.hotspot_ops = discovered;
                c.charge_loop_overhead(chunk(frontier.len(), workers));
                c
            };
            c.barriers = 1;
            r.push("level", level, c, frontier.len() as u64);
        }

        let compute_ns = level_watch.as_mut().map_or(0, xmt_trace::Stopwatch::lap_ns);
        let parallel_frontier = frontier.len() as u64;
        // Refill the retained frontier buffer in place (no per-level
        // allocation: capacity is n, and next_len <= n).
        frontier.clear();
        frontier.extend(
            next[..next_len]
                .iter()
                // Relaxed: queue writes preceded the level-ending join.
                .map(|a| a.load(Ordering::Relaxed)),
        );
        if !frontier.is_empty() {
            frontier_sizes.push(frontier.len() as u64);
        }
        if tracing {
            if let Some(sk) = sink.as_deref_mut() {
                let exchange_ns = level_watch.as_mut().map_or(0, xmt_trace::Stopwatch::lap_ns);
                sk.record(xmt_trace::SuperstepTrace {
                    superstep: level,
                    active: parallel_frontier,
                    messages_sent: discovered,
                    // Relaxed: post-join read of a stats counter.
                    messages_generated: edges_scanned.load(Ordering::Relaxed),
                    messages_delivered: discovered,
                    pulled: bottom_up,
                    pull_probes: if bottom_up {
                        // Relaxed: post-join read of a stats counter.
                        edges_scanned.load(Ordering::Relaxed)
                    } else {
                        0
                    },
                    compute_ns,
                    exchange_ns,
                    total_ns: compute_ns + exchange_ns,
                    ..xmt_trace::SuperstepTrace::default()
                });
            }
        }
        level += 1;
    }

    BfsResult {
        dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
        parent: parent.into_iter().map(AtomicU64::into_inner).collect(),
        frontier_sizes,
    }
}

fn chunk(n: usize, workers: usize) -> u64 {
    xmt_par::pfor::default_chunk(n.max(1), workers) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::{binary_tree, disjoint_cliques, grid, path, ring, star};
    use xmt_graph::validate::{reference_bfs, validate_bfs};

    #[test]
    fn path_distances_are_indices() {
        let g = build_undirected(&path(20));
        let r = bfs(&g, 0);
        validate_bfs(&g, 0, &r.dist, &r.parent).unwrap();
        for v in 0..20 {
            assert_eq!(r.dist[v], v as u64);
        }
        assert_eq!(r.frontier_sizes, vec![1; 20]);
    }

    #[test]
    fn star_has_two_levels() {
        let g = build_undirected(&star(100));
        let r = bfs(&g, 0);
        validate_bfs(&g, 0, &r.dist, &r.parent).unwrap();
        assert_eq!(r.frontier_sizes, vec![1, 99]);
    }

    #[test]
    fn ring_wraps_both_ways() {
        let g = build_undirected(&ring(10));
        let r = bfs(&g, 0);
        validate_bfs(&g, 0, &r.dist, &r.parent).unwrap();
        assert_eq!(r.dist[5], 5);
        assert_eq!(r.dist[9], 1);
        assert_eq!(r.frontier_sizes, vec![1, 2, 2, 2, 2, 1]);
    }

    #[test]
    fn unreachable_vertices_stay_unmarked() {
        let g = build_undirected(&disjoint_cliques(2, 4));
        let r = bfs(&g, 0);
        validate_bfs(&g, 0, &r.dist, &r.parent).unwrap();
        for v in 4..8 {
            assert_eq!(r.dist[v], u64::MAX);
            assert_eq!(r.parent[v], NO_VERTEX);
        }
    }

    #[test]
    fn grid_distance_is_manhattan() {
        let g = build_undirected(&grid(8, 8));
        let r = bfs(&g, 0);
        validate_bfs(&g, 0, &r.dist, &r.parent).unwrap();
        for row in 0..8u64 {
            for col in 0..8u64 {
                assert_eq!(r.dist[(row * 8 + col) as usize], row + col);
            }
        }
    }

    #[test]
    fn matches_serial_reference_distances() {
        let el = xmt_graph::gen::er::gnm(3000, 9000, 5);
        let g = build_undirected(&el);
        let r = bfs(&g, 7);
        let (ref_dist, _) = reference_bfs(&g, 7);
        assert_eq!(r.dist, ref_dist);
        validate_bfs(&g, 7, &r.dist, &r.parent).unwrap();
    }

    #[test]
    fn instrumented_levels_track_frontier() {
        let g = build_undirected(&binary_tree(255));
        let mut rec = Recorder::new();
        let r = bfs_instrumented(&g, 0, &mut rec);
        // Tree of depth 7: levels 0..7.
        assert_eq!(rec.steps("level"), 8);
        let observed: Vec<u64> = rec.with_label("level").map(|x| x.observed).collect();
        assert_eq!(observed, r.frontier_sizes);
        assert_eq!(observed, vec![1, 2, 4, 8, 16, 32, 64, 128]);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_levels_mirror_frontier_sizes() {
        let g = build_undirected(&binary_tree(255));
        let reference = bfs(&g, 0);
        let mut sink = xmt_trace::TraceSink::new();
        let r = bfs_traced(&g, 0, &mut sink);
        assert_eq!(r, reference);
        let trace = sink.finish();
        // One record per expanded level (the last level discovers
        // nothing and ends the loop).
        assert_eq!(trace.len(), r.frontier_sizes.len());
        for (t, &size) in trace.iter().zip(&r.frontier_sizes) {
            assert_eq!(t.active, size);
        }
        // Discoveries at level L are the frontier entering level L+1.
        for (t, &next_size) in trace.iter().zip(r.frontier_sizes.iter().skip(1)) {
            assert_eq!(t.messages_sent, next_size);
        }
        assert_eq!(trace.last().unwrap().messages_sent, 0);
    }

    #[test]
    fn source_out_of_range_panics() {
        let g = build_undirected(&path(3));
        assert!(std::panic::catch_unwind(|| bfs(&g, 99)).is_err());
    }
}
