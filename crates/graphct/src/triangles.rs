//! Shared-memory triangle counting and clustering coefficients.
//!
//! The paper (§V): "the algorithm is expressed as a triply-nested loop.
//! The outer loop iterates over all vertices.  The middle loop iterates
//! over all neighbors of a vertex.  The inner-most loop iterates over all
//! neighbors of the neighbors of a vertex."  With sorted adjacency the
//! innermost loop is a merge intersection.  The shared-memory version
//! "only produces a write when a triangle is detected" — the property
//! that makes it 181× lighter on writes than the BSP variant.
//!
//! Two composable optimizations sit on top of that baseline:
//!
//! * **Degree-ordered direction** ([`xmt_graph::ops::dag::dag_view`]):
//!   the default entry points sweep the DAG view, where every triangle
//!   is rooted at its lowest-`(degree, id)` corner and hub adjacency
//!   lists are never walked from the hub side.
//! * **Intersection strategies** ([`IntersectStrategy`]): merge walk
//!   (the paper's shape), binary-search probing, epoch-stamped hash
//!   marking (the `tc.c` exemplar's mark array, with a stamp check
//!   replacing the O(d) unmark pass), or a per-pair `Auto` choice.
//!   Mark arrays live in a per-worker [`TcScratch`] pool, so the sweep
//!   itself performs **zero heap allocations** (the `zero_alloc` gate
//!   pins this for the hash strategy).
//!
//! The paper-faithful `v < u < w` id-order enumeration survives as
//! [`count_triangles_idorder`]; the model-prediction figures keep using
//! its merge variant so the reproduced numbers stay byte-identical.

use std::sync::atomic::{AtomicU64, Ordering};

use xmt_graph::ops::dag::dag_view;
use xmt_graph::{Csr, IntersectStrategy, VertexId};
use xmt_model::{PhaseCounts, Recorder};
use xmt_par::atomic::as_atomic_u64;
use xmt_par::{Executor, WorkerScratch};

/// One worker's epoch-stamped mark array.
///
/// `stamps[w] == epoch` means `w` is marked in the current intersection
/// window; bumping `epoch` unmarks everything in O(1) — the trick that
/// replaces the `tc.c` exemplar's per-pair clear pass.
#[derive(Default)]
pub struct MarkScratch {
    stamps: Vec<u32>,
    epoch: u32,
}

impl MarkScratch {
    /// Grow the stamp array to cover `n` vertices (no-op once sized).
    fn ensure(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
    }

    /// Open a fresh marking window and return its stamp value.
    ///
    /// On `u32` wrap the array is cleared once — amortized O(1) over
    /// four billion windows.
    #[inline]
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Reusable per-worker scratch for the hash-marking strategies.
///
/// Create once, [`prepare`](Self::prepare) outside the parallel region,
/// and hand to [`count_triangles_dag`] as many times as you like: after
/// the first call the sweep allocates nothing.
pub struct TcScratch {
    marks: WorkerScratch<MarkScratch>,
}

impl Default for TcScratch {
    fn default() -> Self {
        TcScratch::new()
    }
}

impl TcScratch {
    /// An empty pool (sized on first [`prepare`](Self::prepare)).
    pub fn new() -> Self {
        TcScratch {
            marks: WorkerScratch::new(1),
        }
    }

    /// Size the pool for `workers` workers and `n` vertices.  Must be
    /// called before the parallel region — growing a slot inside the
    /// sweep would put an allocation on the hot path.
    pub fn prepare(&mut self, workers: usize, n: usize) {
        if self.marks.len() < workers.max(1) {
            self.marks = WorkerScratch::new(workers);
        }
        for m in self.marks.iter_mut() {
            m.ensure(n);
        }
    }
}

/// Count each triangle of the undirected graph exactly once.
///
/// Default fast path: degree-ordered DAG sweep with the
/// [`IntersectStrategy::Auto`] per-pair intersection choice.
pub fn count_triangles(g: &Csr) -> u64 {
    count_triangles_with(g, IntersectStrategy::Auto, None, &Executor::fixed())
}

/// As [`count_triangles`] on an explicit [`Executor`] — the native
/// engine's entry point.  Guided chunking matters most here: per-vertex
/// intersection work is degree-skewed even after DAG orientation, so
/// RMAT hubs make static chunks unbalanced.  The count is identical
/// across executors.
pub fn count_triangles_exec(g: &Csr, exec: &Executor) -> u64 {
    count_triangles_with(g, IntersectStrategy::Auto, None, exec)
}

/// As [`count_triangles`], recording a single `"count"` phase (observed =
/// triangles found) with strategy-aware operation charging.
pub fn count_triangles_instrumented(g: &Csr, rec: &mut Recorder) -> u64 {
    count_triangles_with(g, IntersectStrategy::Auto, Some(rec), &Executor::fixed())
}

/// Degree-ordered DAG triangle count with an explicit strategy.
///
/// Builds the DAG view and a fresh scratch pool internally; for an
/// allocation-free steady state build them once and call
/// [`count_triangles_dag`] directly.
pub fn count_triangles_with(
    g: &Csr,
    strategy: IntersectStrategy,
    rec: Option<&mut Recorder>,
    exec: &Executor,
) -> u64 {
    assert!(
        !g.is_directed(),
        "triangle counting needs an undirected graph"
    );
    assert!(g.is_sorted(), "triangle counting needs sorted adjacency");
    let dag = dag_view(g);
    let mut scratch = TcScratch::new();
    count_triangles_dag(&dag, strategy, rec, exec, &mut scratch)
}

/// Sweep a prebuilt degree-ordered DAG view (see
/// [`xmt_graph::ops::dag::dag_view`]).  With a
/// [`prepare`](TcScratch::prepare)d scratch this performs zero heap
/// allocations — the steady-state entry point for repeated counts over
/// one graph.
pub fn count_triangles_dag(
    dag: &Csr,
    strategy: IntersectStrategy,
    rec: Option<&mut Recorder>,
    exec: &Executor,
    scratch: &mut TcScratch,
) -> u64 {
    assert!(dag.is_directed(), "count_triangles_dag takes the DAG view");
    assert!(dag.is_sorted(), "triangle counting needs sorted adjacency");
    let (count, _) = dag_sweep(dag, strategy, rec, false, exec, scratch);
    count
}

/// Per-vertex local clustering coefficients plus the global count.
///
/// `cc[v] = 2·tri(v) / (d(v)·(d(v)−1))`, 0 for degree < 2.
pub fn clustering_coefficients(g: &Csr) -> (Vec<f64>, u64) {
    clustering_coefficients_with(g, IntersectStrategy::Auto, &Executor::fixed())
}

/// As [`clustering_coefficients`] with an explicit intersection strategy
/// and executor.  Degrees in the coefficient come from the undirected
/// graph; triangle credit comes from the DAG sweep (each triangle
/// credits all three corners exactly once, so per-vertex tallies are
/// orientation-invariant).
pub fn clustering_coefficients_with(
    g: &Csr,
    strategy: IntersectStrategy,
    exec: &Executor,
) -> (Vec<f64>, u64) {
    assert!(
        !g.is_directed(),
        "triangle counting needs an undirected graph"
    );
    assert!(g.is_sorted(), "triangle counting needs sorted adjacency");
    let dag = dag_view(g);
    let mut scratch = TcScratch::new();
    let (count, per_vertex) = dag_sweep(&dag, strategy, None, true, exec, &mut scratch);
    // lint:allow(no-panic-in-lib): unreachable — dag_sweep returns
    // per-vertex tallies whenever per_vertex is true.
    let tri = per_vertex.expect("per-vertex counts requested");
    let cc = (0..g.num_vertices())
        .map(|v| {
            let d = g.degree(v);
            if d < 2 {
                0.0
            } else {
                2.0 * tri[v as usize] as f64 / (d * (d - 1)) as f64
            }
        })
        .collect();
    (cc, count)
}

/// The DAG-view sweep: for each vertex `v` and each out-neighbor `u`,
/// count `|N⁺(v) ∩ N⁺(u)|` with the chosen strategy.  Every triangle is
/// enumerated exactly once, rooted at its lowest-`(degree, id)` corner.
#[allow(clippy::type_complexity)]
fn dag_sweep(
    dag: &Csr,
    strategy: IntersectStrategy,
    rec: Option<&mut Recorder>,
    per_vertex: bool,
    exec: &Executor,
    scratch: &mut TcScratch,
) -> (u64, Option<Vec<u64>>) {
    let n = dag.num_vertices() as usize;
    scratch.prepare(exec.workers(), n);

    let total = AtomicU64::new(0);
    // probes: strategy-dependent compare/probe count; mark_writes: stamp
    // stores (hash/auto only).  Both feed the model's PhaseCounts.
    let probes_total = AtomicU64::new(0);
    let marks_total = AtomicU64::new(0);
    let mut tri_storage: Option<Vec<u64>> = per_vertex.then(|| vec![0u64; n]);
    let tri: Option<&[AtomicU64]> = tri_storage.as_mut().map(|v| as_atomic_u64(v));

    let marks = &scratch.marks;
    let chunk = chunk(n, exec.workers());
    exec.pfor_chunked(0, n, chunk as usize, |worker, range| {
        // SAFETY: the pool runs at most one thread per worker id within
        // this parallel region (WorkerScratch's contract).
        let ms = unsafe { marks.get(worker) };
        let mut local = 0u64;
        let mut probes = 0u64;
        let mut markw = 0u64;
        for v in range {
            let v = v as u64;
            let nv = dag.neighbors(v);
            if nv.len() < 2 {
                continue; // a rooted wedge needs two out-neighbors
            }
            // Hash marking pays d⁺(v) stamp stores once per vertex and
            // then probes each candidate in O(1); Auto defers the marking
            // until the first pair that actually wants hash probing.
            let mut epoch = 0u32;
            if strategy == IntersectStrategy::Hash {
                epoch = mark(ms, nv);
                markw += nv.len() as u64;
            }
            let mut v_found = 0u64;
            for &u in nv {
                let nu = dag.neighbors(u);
                if nu.is_empty() {
                    continue;
                }
                let found = match strategy {
                    IntersectStrategy::Merge => intersect_merge(nv, nu, tri, &mut probes),
                    IntersectStrategy::BinSearch => intersect_binsearch(nv, nu, tri, &mut probes),
                    IntersectStrategy::Hash => intersect_hash(ms, epoch, nu, tri, &mut probes),
                    IntersectStrategy::Auto => {
                        // Cost models: walk-short + binary-probe-long vs
                        // probe every element of N⁺(u) against the marks.
                        let short = nv.len().min(nu.len()) as u64;
                        let long = nv.len().max(nu.len());
                        let logl = (long.max(2)).ilog2() as u64 + 1;
                        if short * logl < nu.len() as u64 {
                            intersect_binsearch(nv, nu, tri, &mut probes)
                        } else {
                            if epoch == 0 {
                                epoch = mark(ms, nv);
                                markw += nv.len() as u64;
                            }
                            intersect_hash(ms, epoch, nu, tri, &mut probes)
                        }
                    }
                };
                if found > 0 {
                    local += found;
                    v_found += found;
                    if let Some(tri) = &tri {
                        // Relaxed (all tri[] adds): pure per-vertex
                        // tallies, read only after the sweep joins.
                        tri[u as usize].fetch_add(found, Ordering::Relaxed);
                    }
                }
            }
            if v_found > 0 {
                if let Some(tri) = &tri {
                    // Relaxed: tally, read post-join (as above).
                    tri[v as usize].fetch_add(v_found, Ordering::Relaxed);
                }
            }
        }
        if local > 0 {
            // Relaxed: tally accumulator, read only after the join.
            total.fetch_add(local, Ordering::Relaxed);
        }
        probes_total.fetch_add(probes, Ordering::Relaxed); // Relaxed: stats, post-join
        marks_total.fetch_add(markw, Ordering::Relaxed); // Relaxed: stats, post-join
    });

    // Relaxed: the parallel loop joined; adds happen-before these reads.
    let count = total.load(Ordering::Relaxed);
    if let Some(r) = rec {
        let probes = probes_total.load(Ordering::Relaxed); // Relaxed: stats, post-join
        let markw = marks_total.load(Ordering::Relaxed); // Relaxed: stats, post-join
        let mut c = PhaseCounts::with_items(dag.num_arcs());
        // Each probe reads one adjacency or stamp word; the sweep also
        // streams every DAG arc once.  Marks are plain stores; each
        // found triangle costs one shared (atomic) tally write.
        c.reads = probes + dag.num_arcs();
        c.alu_ops = probes;
        c.writes = count + markw;
        c.atomics = count;
        c.charge_loop_overhead(chunk);
        c.barriers = 1;
        r.push("count", 0, c, count);
    }
    (count, tri_storage)
}

/// Stamp every element of `list` into the current epoch; returns it.
#[inline]
fn mark(ms: &mut MarkScratch, list: &[VertexId]) -> u32 {
    let epoch = ms.next_epoch();
    for &x in list {
        ms.stamps[x as usize] = epoch;
    }
    epoch
}

/// Merge-walk `|a ∩ b|` (sorted lists), crediting third corners into
/// `tri`; `probes` accrues one compare per merge step plus setup.
fn intersect_merge(
    a: &[VertexId],
    b: &[VertexId],
    tri: Option<&[AtomicU64]>,
    probes: &mut u64,
) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    *probes += 2;
    while i < a.len() && j < b.len() {
        *probes += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                if let Some(tri) = tri {
                    // Relaxed: per-vertex tally, read after the join.
                    tri[a[i] as usize].fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Walk the shorter list, binary-search the longer; `probes` accrues
/// `⌈log₂ long⌉` per element walked.
fn intersect_binsearch(
    a: &[VertexId],
    b: &[VertexId],
    tri: Option<&[AtomicU64]>,
    probes: &mut u64,
) -> u64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let logl = (long.len().max(2)).ilog2() as u64 + 1;
    let mut count = 0u64;
    for &w in short {
        *probes += logl;
        if long.binary_search(&w).is_ok() {
            count += 1;
            if let Some(tri) = tri {
                // Relaxed: per-vertex tally, read after the join.
                tri[w as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    count
}

/// Probe every element of `b` against the epoch marks (the marked list
/// was stamped by [`mark`]); one stamp read per element.
fn intersect_hash(
    ms: &MarkScratch,
    epoch: u32,
    b: &[VertexId],
    tri: Option<&[AtomicU64]>,
    probes: &mut u64,
) -> u64 {
    let mut count = 0u64;
    *probes += b.len() as u64;
    for &w in b {
        if ms.stamps[w as usize] == epoch {
            count += 1;
            if let Some(tri) = tri {
                // Relaxed: per-vertex tally, read after the join.
                tri[w as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    count
}

/// Paper-faithful `v < u < w` id-order enumeration over the undirected
/// graph, with a pluggable intersection strategy.
///
/// The [`IntersectStrategy::Merge`] variant reproduces the original §V
/// kernel *exactly* — same walk, same operation charging — and anchors
/// the model-prediction figures; the other strategies measure what the
/// intersection mechanism alone buys without the DAG reordering.
pub fn count_triangles_idorder(
    g: &Csr,
    strategy: IntersectStrategy,
    rec: Option<&mut Recorder>,
    exec: &Executor,
) -> u64 {
    assert!(
        !g.is_directed(),
        "triangle counting needs an undirected graph"
    );
    assert!(g.is_sorted(), "triangle counting needs sorted adjacency");
    match strategy {
        IntersectStrategy::Merge => idorder_merge(g, rec, exec),
        IntersectStrategy::BinSearch => idorder_binsearch(g, rec, exec),
        IntersectStrategy::Hash | IntersectStrategy::Auto => idorder_hash(g, rec, exec),
    }
}

/// Triangle counting with the *binary-search* intersection strategy in
/// the id-order enumeration: walk the shorter candidate range and probe
/// the longer list.  On skewed degree distributions this does
/// `d_min · log d_max` work instead of the merge walk's `d_min + d_max`
/// — the strategy trade-off the paper's §VI points to.  Compare with
/// [`count_triangles`] via the `intersection` Criterion bench and the
/// `ablation_intersect` binary.
pub fn count_triangles_binsearch(g: &Csr, rec: Option<&mut Recorder>, exec: &Executor) -> u64 {
    count_triangles_idorder(g, IntersectStrategy::BinSearch, rec, exec)
}

/// The original §V merge kernel (id order, merge intersection).  Kept
/// byte-identical in both walk and charging: the reproduced figures and
/// the instrumentation tests pin its exact operation counts.
fn idorder_merge(g: &Csr, rec: Option<&mut Recorder>, exec: &Executor) -> u64 {
    let n = g.num_vertices() as usize;
    let total = AtomicU64::new(0);
    let compares = AtomicU64::new(0);

    exec.pfor(0, n, |v| {
        let v = v as u64;
        let nv = g.neighbors(v);
        let mut local = 0u64;
        let mut local_cmp = 0u64;
        for &u in nv {
            if u <= v {
                continue;
            }
            // Intersect N(v) ∩ N(u), counting only w > u so each triangle
            // v < u < w is found exactly once.
            let nu = g.neighbors(u);
            let (found, cmp) = intersect_above(nv, nu, u);
            local += found;
            local_cmp += cmp;
        }
        if local > 0 {
            // Relaxed: tally accumulator, read only after the join.
            total.fetch_add(local, Ordering::Relaxed);
        }
        compares.fetch_add(local_cmp, Ordering::Relaxed); // Relaxed: stats, post-join
    });

    // Relaxed: the parallel loop joined; adds happen-before this read.
    let count = total.load(Ordering::Relaxed);
    if let Some(r) = rec {
        let cmp = compares.load(Ordering::Relaxed); // Relaxed: post-join read
        let mut c = PhaseCounts::with_items(g.num_arcs());
        // Each merge step reads one adjacency word and compares; each
        // found triangle costs one (local, then one shared) write.
        c.reads = cmp + g.num_arcs();
        c.alu_ops = cmp;
        c.writes = count;
        c.atomics = count;
        c.charge_loop_overhead(chunk(n, exec.workers()));
        c.barriers = 1;
        r.push("count", 0, c, count);
    }
    count
}

fn idorder_binsearch(g: &Csr, rec: Option<&mut Recorder>, exec: &Executor) -> u64 {
    let n = g.num_vertices() as usize;
    let total = AtomicU64::new(0);
    let probes = AtomicU64::new(0);

    exec.pfor(0, n, |v| {
        let v = v as u64;
        let nv = g.neighbors(v);
        let mut local = 0u64;
        let mut local_probes = 0u64;
        for &u in nv {
            if u <= v {
                continue;
            }
            let nu = g.neighbors(u);
            // Probe with the shorter candidate range into the longer list.
            let vi = nv.partition_point(|&x| x <= u);
            let ui = nu.partition_point(|&x| x <= u);
            let swap = nv.len() - vi > nu.len() - ui;
            let short = if swap { &nu[ui..] } else { &nv[vi..] };
            let long = if swap { nv } else { nu };
            let logl = (long.len().max(2)).ilog2() as u64;
            for &w in short {
                local_probes += logl;
                if long.binary_search(&w).is_ok() {
                    local += 1;
                }
            }
        }
        if local > 0 {
            // Relaxed: tally accumulator, read only after the join.
            total.fetch_add(local, Ordering::Relaxed);
        }
        probes.fetch_add(local_probes, Ordering::Relaxed); // Relaxed: stats, post-join
    });

    // Relaxed: the parallel loop joined; adds happen-before this read.
    let count = total.load(Ordering::Relaxed);
    if let Some(r) = rec {
        let p = probes.load(Ordering::Relaxed); // Relaxed: post-join read
        let mut c = PhaseCounts::with_items(g.num_arcs());
        c.reads = p + g.num_arcs();
        c.alu_ops = p;
        c.writes = count;
        c.atomics = count;
        c.charge_loop_overhead(chunk(n, exec.workers()));
        c.barriers = 1;
        r.push("count", 0, c, count);
    }
    count
}

/// Id-order enumeration with hash marking: stamp N(v) once per vertex,
/// then probe each higher neighbor's list above the `w > u` floor.
fn idorder_hash(g: &Csr, rec: Option<&mut Recorder>, exec: &Executor) -> u64 {
    let n = g.num_vertices() as usize;
    let total = AtomicU64::new(0);
    let probes_total = AtomicU64::new(0);
    let marks_total = AtomicU64::new(0);
    let mut scratch = TcScratch::new();
    scratch.prepare(exec.workers(), n);
    let marks = &scratch.marks;

    let chunk_size = chunk(n, exec.workers());
    exec.pfor_chunked(0, n, chunk_size as usize, |worker, range| {
        // SAFETY: one thread per worker id within this parallel region.
        let ms = unsafe { marks.get(worker) };
        let mut local = 0u64;
        let mut probes = 0u64;
        let mut markw = 0u64;
        for v in range {
            let v = v as u64;
            let nv = g.neighbors(v);
            if nv.len() < 2 || *nv.last().unwrap_or(&0) <= v {
                continue; // no u > v ⇒ no wedge rooted here
            }
            let epoch = mark(ms, nv);
            markw += nv.len() as u64;
            for &u in nv {
                if u <= v {
                    continue;
                }
                let nu = g.neighbors(u);
                let ui = nu.partition_point(|&x| x <= u);
                probes += (nu.len() - ui) as u64 + 2;
                for &w in &nu[ui..] {
                    if ms.stamps[w as usize] == epoch {
                        local += 1;
                    }
                }
            }
        }
        if local > 0 {
            // Relaxed: tally accumulator, read only after the join.
            total.fetch_add(local, Ordering::Relaxed);
        }
        probes_total.fetch_add(probes, Ordering::Relaxed); // Relaxed: stats, post-join
        marks_total.fetch_add(markw, Ordering::Relaxed); // Relaxed: stats, post-join
    });

    // Relaxed: the parallel loop joined; adds happen-before these reads.
    let count = total.load(Ordering::Relaxed);
    if let Some(r) = rec {
        let probes = probes_total.load(Ordering::Relaxed); // Relaxed: stats, post-join
        let markw = marks_total.load(Ordering::Relaxed); // Relaxed: stats, post-join
        let mut c = PhaseCounts::with_items(g.num_arcs());
        c.reads = probes + g.num_arcs();
        c.alu_ops = probes;
        c.writes = count + markw;
        c.atomics = count;
        c.charge_loop_overhead(chunk_size);
        c.barriers = 1;
        r.push("count", 0, c, count);
    }
    count
}

/// Merge-intersect two sorted lists counting common elements `> floor`;
/// returns `(count, comparisons)`.
fn intersect_above(a: &[VertexId], b: &[VertexId], floor: VertexId) -> (u64, u64) {
    let mut i = a.partition_point(|&x| x <= floor);
    let mut j = b.partition_point(|&x| x <= floor);
    let mut count = 0u64;
    let mut cmp = (a.len() - i + b.len() - j) as u64 / 8 + 2; // binary searches
    while i < a.len() && j < b.len() {
        cmp += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (count, cmp)
}

fn chunk(n: usize, workers: usize) -> u64 {
    xmt_par::pfor::default_chunk(n.max(1), workers) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::{
        clique, clique_triangles, disjoint_cliques, grid, path, ring, star,
    };
    use xmt_graph::validate::reference_triangles;

    #[test]
    fn cliques_have_closed_form_counts() {
        for n in [3u64, 4, 5, 8, 12] {
            let g = build_undirected(&clique(n));
            assert_eq!(count_triangles(&g), clique_triangles(n), "K{n}");
        }
    }

    #[test]
    fn triangle_free_families_count_zero() {
        for el in [path(30), star(30), grid(5, 6), ring(8)] {
            let g = build_undirected(&el);
            assert_eq!(count_triangles(&g), 0);
        }
    }

    #[test]
    fn disjoint_cliques_sum() {
        let g = build_undirected(&disjoint_cliques(5, 6));
        assert_eq!(count_triangles(&g), 5 * clique_triangles(6));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..4u64 {
            let el = xmt_graph::gen::er::gnm(120, 900, seed);
            let g = build_undirected(&el);
            assert_eq!(count_triangles(&g), reference_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn every_strategy_counts_identically_dag_and_idorder() {
        for seed in 0..3u64 {
            let el = xmt_graph::gen::er::gnm(150, 1200, seed);
            let g = build_undirected(&el);
            let want = reference_triangles(&g);
            for exec in [Executor::fixed(), Executor::guided()] {
                for s in IntersectStrategy::ALL {
                    assert_eq!(
                        count_triangles_with(&g, s, None, &exec),
                        want,
                        "dag/{s:?} seed {seed}"
                    );
                    assert_eq!(
                        count_triangles_idorder(&g, s, None, &exec),
                        want,
                        "idorder/{s:?} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn dag_entry_point_recycles_scratch() {
        let el = xmt_graph::gen::er::gnm(200, 1500, 11);
        let g = build_undirected(&el);
        let want = reference_triangles(&g);
        let dag = xmt_graph::ops::dag::dag_view(&g);
        let exec = Executor::fixed();
        let mut scratch = TcScratch::new();
        for _ in 0..3 {
            for s in IntersectStrategy::ALL {
                assert_eq!(
                    count_triangles_dag(&dag, s, None, &exec, &mut scratch),
                    want
                );
            }
        }
    }

    #[test]
    fn epoch_wrap_resets_marks() {
        let mut ms = MarkScratch::default();
        ms.ensure(4);
        ms.epoch = u32::MAX - 1;
        let e1 = ms.next_epoch();
        assert_eq!(e1, u32::MAX);
        ms.stamps[2] = e1;
        // Wrap: the array is cleared so stale stamps can never collide.
        let e2 = ms.next_epoch();
        assert_eq!(e2, 1);
        assert!(ms.stamps.iter().all(|&s| s == 0));
    }

    #[test]
    fn clustering_coefficient_of_clique_is_one() {
        let g = build_undirected(&clique(7));
        let (cc, count) = clustering_coefficients(&g);
        assert_eq!(count, clique_triangles(7));
        for &c in &cc {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clustering_coefficient_of_star_is_zero() {
        let g = build_undirected(&star(10));
        let (cc, count) = clustering_coefficients(&g);
        assert_eq!(count, 0);
        assert!(cc.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn per_vertex_counts_sum_to_three_times_total() {
        let el = xmt_graph::gen::er::gnm(80, 800, 3);
        let g = build_undirected(&el);
        let (cc, total) = clustering_coefficients(&g);
        // Reconstruct per-vertex triangle counts from cc.
        let mut sum = 0.0;
        for v in 0..g.num_vertices() {
            let d = g.degree(v);
            if d >= 2 {
                sum += cc[v as usize] * (d * (d - 1)) as f64 / 2.0;
            }
        }
        assert!((sum - 3.0 * total as f64).abs() < 1e-6);
    }

    #[test]
    fn clustering_agrees_across_strategies() {
        let el = xmt_graph::gen::er::gnm(120, 1000, 5);
        let g = build_undirected(&el);
        let (want_cc, want_n) =
            clustering_coefficients_with(&g, IntersectStrategy::Merge, &Executor::fixed());
        for s in [
            IntersectStrategy::BinSearch,
            IntersectStrategy::Hash,
            IntersectStrategy::Auto,
        ] {
            let (cc, n) = clustering_coefficients_with(&g, s, &Executor::guided());
            assert_eq!(n, want_n, "{s:?}");
            assert_eq!(cc, want_cc, "{s:?}");
        }
    }

    #[test]
    fn binsearch_variant_counts_identically() {
        for seed in 0..3u64 {
            let el = xmt_graph::gen::er::gnm(150, 1200, seed);
            let g = build_undirected(&el);
            assert_eq!(
                count_triangles_binsearch(&g, None, &Executor::fixed()),
                count_triangles(&g),
                "seed {seed}"
            );
        }
        let g = build_undirected(&clique(9));
        assert_eq!(
            count_triangles_binsearch(&g, None, &Executor::guided()),
            clique_triangles(9)
        );
    }

    #[test]
    fn degree_ordering_reduces_intersection_work_on_rmat() {
        // The DAG view iterates every intersection from the low-degree
        // endpoint, so the default path reads far fewer adjacency words
        // than the raw id-order merge enumeration on a hub-heavy graph.
        let p = xmt_graph::gen::rmat::RmatParams::graph500(10);
        let g = build_undirected(&xmt_graph::gen::rmat::rmat_edges(&p, 4));

        let mut raw_rec = Recorder::new();
        let raw = count_triangles_idorder(
            &g,
            IntersectStrategy::Merge,
            Some(&mut raw_rec),
            &Executor::fixed(),
        );
        let mut dag_rec = Recorder::new();
        let dag = count_triangles_instrumented(&g, &mut dag_rec);
        assert_eq!(raw, dag, "count is order-invariant");

        let raw_reads = raw_rec.with_label("count").next().unwrap().counts.reads;
        let dag_reads = dag_rec.with_label("count").next().unwrap().counts.reads;
        assert!(
            dag_reads < raw_reads,
            "DAG ordering should cut reads: {dag_reads} vs {raw_reads}"
        );
    }

    #[test]
    fn binsearch_probes_fewer_on_skewed_pairs() {
        // star-plus-one-edge: leaf lists are length <=2, hub list is huge.
        let mut el = star(4000);
        el.push(1, 2); // triangle (0,1,2)
        let g = build_undirected(&el);
        let mut merge_rec = Recorder::new();
        count_triangles_idorder(
            &g,
            IntersectStrategy::Merge,
            Some(&mut merge_rec),
            &Executor::fixed(),
        );
        let mut bin_rec = Recorder::new();
        assert_eq!(
            count_triangles_binsearch(&g, Some(&mut bin_rec), &Executor::fixed()),
            1
        );
        let merge_reads = merge_rec.with_label("count").next().unwrap().counts.reads;
        let bin_reads = bin_rec.with_label("count").next().unwrap().counts.reads;
        assert!(
            bin_reads < merge_reads,
            "binary search should win on skew: {bin_reads} vs {merge_reads}"
        );
    }

    #[test]
    fn hash_marks_charge_as_writes() {
        let g = build_undirected(&clique(10));
        let mut merge_rec = Recorder::new();
        count_triangles_with(
            &g,
            IntersectStrategy::Merge,
            Some(&mut merge_rec),
            &Executor::fixed(),
        );
        let mut hash_rec = Recorder::new();
        count_triangles_with(
            &g,
            IntersectStrategy::Hash,
            Some(&mut hash_rec),
            &Executor::fixed(),
        );
        let merge_writes = merge_rec.with_label("count").next().unwrap().counts.writes;
        let hash_writes = hash_rec.with_label("count").next().unwrap().counts.writes;
        assert!(
            hash_writes > merge_writes,
            "stamp stores must be charged: {hash_writes} vs {merge_writes}"
        );
    }

    #[test]
    fn instrumented_records_single_phase_with_count() {
        let g = build_undirected(&clique(10));
        let mut rec = Recorder::new();
        let count = count_triangles_instrumented(&g, &mut rec);
        assert_eq!(count, clique_triangles(10));
        let r = rec.with_label("count").next().unwrap();
        assert_eq!(r.observed, count);
        assert_eq!(r.counts.atomics, count);
        // Key asymmetry vs BSP: writes ≈ triangles (+ mark stamps), not
        // candidate messages.
        assert!(r.counts.reads > r.counts.writes);
    }

    #[test]
    fn idorder_merge_charging_is_unchanged() {
        // The paper-faithful baseline: one shared write per triangle,
        // exactly — the instrumentation contract the figures pin.
        let g = build_undirected(&clique(10));
        let mut rec = Recorder::new();
        let count = count_triangles_idorder(
            &g,
            IntersectStrategy::Merge,
            Some(&mut rec),
            &Executor::fixed(),
        );
        let r = rec.with_label("count").next().unwrap();
        assert_eq!(count, clique_triangles(10));
        assert_eq!(r.counts.writes, count);
        assert_eq!(r.counts.atomics, count);
    }
}
