//! Shared-memory triangle counting and clustering coefficients.
//!
//! The paper (§V): "the algorithm is expressed as a triply-nested loop.
//! The outer loop iterates over all vertices.  The middle loop iterates
//! over all neighbors of a vertex.  The inner-most loop iterates over all
//! neighbors of the neighbors of a vertex."  With sorted adjacency the
//! innermost loop is a merge intersection.  The shared-memory version
//! "only produces a write when a triangle is detected" — the property
//! that makes it 181× lighter on writes than the BSP variant.

use std::sync::atomic::{AtomicU64, Ordering};

use xmt_graph::{Csr, VertexId};
use xmt_model::{PhaseCounts, Recorder};
use xmt_par::atomic::as_atomic_u64;
use xmt_par::{parallel_for, Executor};

/// Count each triangle of the undirected graph exactly once.
pub fn count_triangles(g: &Csr) -> u64 {
    let (count, _) = run(g, &mut None, false, &Executor::fixed());
    count
}

/// As [`count_triangles`] on an explicit [`Executor`] — the native
/// engine's entry point.  Guided chunking matters most here: per-vertex
/// intersection work is proportional to degree², so RMAT hubs make
/// static chunks wildly unbalanced.  The count is identical across
/// executors.
pub fn count_triangles_exec(g: &Csr, exec: &Executor) -> u64 {
    let (count, _) = run(g, &mut None, false, exec);
    count
}

/// As [`count_triangles`], recording a single `"count"` phase (observed =
/// triangles found).
pub fn count_triangles_instrumented(g: &Csr, rec: &mut Recorder) -> u64 {
    let (count, _) = run(g, &mut Some(rec), false, &Executor::fixed());
    count
}

/// Per-vertex local clustering coefficients plus the global count.
///
/// `cc[v] = 2·tri(v) / (d(v)·(d(v)−1))`, 0 for degree < 2.
pub fn clustering_coefficients(g: &Csr) -> (Vec<f64>, u64) {
    let (count, per_vertex) = run(g, &mut None, true, &Executor::fixed());
    // lint:allow(no-panic-in-lib): unreachable — `run` returns Some
    // whenever `per_vertex` is true, which this call hardcodes.
    let tri = per_vertex.expect("per-vertex counts requested");
    let cc = (0..g.num_vertices())
        .map(|v| {
            let d = g.degree(v);
            if d < 2 {
                0.0
            } else {
                2.0 * tri[v as usize] as f64 / (d * (d - 1)) as f64
            }
        })
        .collect();
    (cc, count)
}

fn run(
    g: &Csr,
    rec: &mut Option<&mut Recorder>,
    per_vertex: bool,
    exec: &Executor,
) -> (u64, Option<Vec<u64>>) {
    assert!(
        !g.is_directed(),
        "triangle counting needs an undirected graph"
    );
    assert!(g.is_sorted(), "triangle counting needs sorted adjacency");
    let n = g.num_vertices() as usize;

    let total = AtomicU64::new(0);
    let compares = AtomicU64::new(0);
    // One zeroed allocation (the allocator hands back pre-zeroed pages)
    // viewed as atomics for the sweep, then returned as plain `u64`s —
    // no per-element construction on entry and no conversion pass on
    // exit, so both entry points share the same buffer end to end.
    let mut tri_storage: Option<Vec<u64>> = per_vertex.then(|| vec![0u64; n]);
    let tri: Option<&[AtomicU64]> = tri_storage.as_mut().map(|v| as_atomic_u64(v));

    exec.pfor(0, n, |v| {
        let v = v as u64;
        let nv = g.neighbors(v);
        let mut local = 0u64;
        let mut local_cmp = 0u64;
        for &u in nv {
            if u <= v {
                continue;
            }
            // Intersect N(v) ∩ N(u), counting only w > u so each triangle
            // v < u < w is found exactly once.
            let nu = g.neighbors(u);
            let (found, cmp) = intersect_above(nv, nu, u);
            local += found;
            local_cmp += cmp;
            if let Some(tri) = &tri {
                if found > 0 {
                    // Relaxed (all tri[] adds): pure per-vertex tallies,
                    // read only after the parallel_for joins.
                    tri[v as usize].fetch_add(found, Ordering::Relaxed);
                    // Relaxed: tally, read post-join (as above).
                    tri[u as usize].fetch_add(found, Ordering::Relaxed);
                    // The third corner w also gets credit; recompute the
                    // members to attribute them (cheap: found is tiny).
                    credit_third_corners(nv, nu, u, tri);
                }
            }
        }
        if local > 0 {
            // Relaxed: tally accumulator, read only after the join.
            total.fetch_add(local, Ordering::Relaxed);
        }
        compares.fetch_add(local_cmp, Ordering::Relaxed); // Relaxed: stats, post-join
    });

    // Relaxed: the parallel_for joined; adds happen-before this read.
    let count = total.load(Ordering::Relaxed);
    if let Some(r) = rec.as_deref_mut() {
        let cmp = compares.load(Ordering::Relaxed); // Relaxed: post-join read
        let mut c = PhaseCounts::with_items(g.num_arcs());
        // Each merge step reads one adjacency word and compares; each
        // found triangle costs one (local, then one shared) write.
        c.reads = cmp + g.num_arcs();
        c.alu_ops = cmp;
        c.writes = count;
        c.atomics = count;
        c.charge_loop_overhead(chunk(n, exec.workers()));
        c.barriers = 1;
        r.push("count", 0, c, count);
    }

    (count, tri_storage)
}

/// Triangle counting with the *binary-search* intersection strategy:
/// walk the shorter list and probe the longer one.  On skewed degree
/// distributions (one hub, one leaf) this does `d_min · log d_max` work
/// instead of the merge walk's `d_min + d_max` — the strategy trade-off
/// the paper's §VI points to ("the exact mechanisms of performing the
/// neighbor intersection can be varied, see ref \[12\]").  Compare with
/// [`count_triangles`] via the `intersection` Criterion bench and the
/// `ablation_intersect` binary.
pub fn count_triangles_binsearch(g: &Csr, mut rec: Option<&mut Recorder>) -> u64 {
    assert!(
        !g.is_directed(),
        "triangle counting needs an undirected graph"
    );
    assert!(g.is_sorted(), "triangle counting needs sorted adjacency");
    let n = g.num_vertices() as usize;
    let total = AtomicU64::new(0);
    let probes = AtomicU64::new(0);

    parallel_for(0, n, |v| {
        let v = v as u64;
        let nv = g.neighbors(v);
        let mut local = 0u64;
        let mut local_probes = 0u64;
        for &u in nv {
            if u <= v {
                continue;
            }
            let nu = g.neighbors(u);
            // Probe with the shorter candidate range into the longer list.
            let vi = nv.partition_point(|&x| x <= u);
            let ui = nu.partition_point(|&x| x <= u);
            let swap = nv.len() - vi > nu.len() - ui;
            let short = if swap { &nu[ui..] } else { &nv[vi..] };
            let long = if swap { nv } else { nu };
            let logl = (long.len().max(2)).ilog2() as u64;
            for &w in short {
                local_probes += logl;
                if long.binary_search(&w).is_ok() {
                    local += 1;
                }
            }
        }
        if local > 0 {
            // Relaxed: tally accumulator, read only after the join.
            total.fetch_add(local, Ordering::Relaxed);
        }
        probes.fetch_add(local_probes, Ordering::Relaxed); // Relaxed: stats, post-join
    });

    // Relaxed: the parallel_for joined; adds happen-before this read.
    let count = total.load(Ordering::Relaxed);
    if let Some(r) = rec.take() {
        let p = probes.load(Ordering::Relaxed); // Relaxed: post-join read
        let mut c = PhaseCounts::with_items(g.num_arcs());
        c.reads = p + g.num_arcs();
        c.alu_ops = p;
        c.writes = count;
        c.atomics = count;
        c.charge_loop_overhead(chunk(n, xmt_par::num_threads()));
        c.barriers = 1;
        r.push("count", 0, c, count);
    }
    count
}

/// Merge-intersect two sorted lists counting common elements `> floor`;
/// returns `(count, comparisons)`.
fn intersect_above(a: &[VertexId], b: &[VertexId], floor: VertexId) -> (u64, u64) {
    let mut i = a.partition_point(|&x| x <= floor);
    let mut j = b.partition_point(|&x| x <= floor);
    let mut count = 0u64;
    let mut cmp = (a.len() - i + b.len() - j) as u64 / 8 + 2; // binary searches
    while i < a.len() && j < b.len() {
        cmp += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (count, cmp)
}

/// Attribute triangle credit to the third corner `w` of each triangle
/// `(v, u, w)` found in the intersection.
fn credit_third_corners(nv: &[VertexId], nu: &[VertexId], floor: VertexId, tri: &[AtomicU64]) {
    let mut i = nv.partition_point(|&x| x <= floor);
    let mut j = nu.partition_point(|&x| x <= floor);
    while i < nv.len() && j < nu.len() {
        match nv[i].cmp(&nu[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Relaxed: per-vertex tally, read after the sweep joins.
                tri[nv[i] as usize].fetch_add(1, Ordering::Relaxed);
                i += 1;
                j += 1;
            }
        }
    }
}

fn chunk(n: usize, workers: usize) -> u64 {
    xmt_par::pfor::default_chunk(n.max(1), workers) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::{
        clique, clique_triangles, disjoint_cliques, grid, path, ring, star,
    };
    use xmt_graph::validate::reference_triangles;

    #[test]
    fn cliques_have_closed_form_counts() {
        for n in [3u64, 4, 5, 8, 12] {
            let g = build_undirected(&clique(n));
            assert_eq!(count_triangles(&g), clique_triangles(n), "K{n}");
        }
    }

    #[test]
    fn triangle_free_families_count_zero() {
        for el in [path(30), star(30), grid(5, 6), ring(8)] {
            let g = build_undirected(&el);
            assert_eq!(count_triangles(&g), 0);
        }
    }

    #[test]
    fn disjoint_cliques_sum() {
        let g = build_undirected(&disjoint_cliques(5, 6));
        assert_eq!(count_triangles(&g), 5 * clique_triangles(6));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..4u64 {
            let el = xmt_graph::gen::er::gnm(120, 900, seed);
            let g = build_undirected(&el);
            assert_eq!(count_triangles(&g), reference_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn clustering_coefficient_of_clique_is_one() {
        let g = build_undirected(&clique(7));
        let (cc, count) = clustering_coefficients(&g);
        assert_eq!(count, clique_triangles(7));
        for &c in &cc {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clustering_coefficient_of_star_is_zero() {
        let g = build_undirected(&star(10));
        let (cc, count) = clustering_coefficients(&g);
        assert_eq!(count, 0);
        assert!(cc.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn per_vertex_counts_sum_to_three_times_total() {
        let el = xmt_graph::gen::er::gnm(80, 800, 3);
        let g = build_undirected(&el);
        let (cc, total) = clustering_coefficients(&g);
        // Reconstruct per-vertex triangle counts from cc.
        let mut sum = 0.0;
        for v in 0..g.num_vertices() {
            let d = g.degree(v);
            if d >= 2 {
                sum += cc[v as usize] * (d * (d - 1)) as f64 / 2.0;
            }
        }
        assert!((sum - 3.0 * total as f64).abs() < 1e-6);
    }

    #[test]
    fn binsearch_variant_counts_identically() {
        for seed in 0..3u64 {
            let el = xmt_graph::gen::er::gnm(150, 1200, seed);
            let g = build_undirected(&el);
            assert_eq!(
                count_triangles_binsearch(&g, None),
                count_triangles(&g),
                "seed {seed}"
            );
        }
        let g = build_undirected(&clique(9));
        assert_eq!(count_triangles_binsearch(&g, None), clique_triangles(9));
    }

    #[test]
    fn degree_ordering_reduces_intersection_work_on_rmat() {
        // Relabeling by ascending degree makes hubs highest-ordered, so
        // the v < u < w enumeration iterates from low-degree endpoints —
        // same count, less work.
        use xmt_graph::ops::degree_order::degree_ascending_permutation;
        use xmt_graph::ops::relabel::relabel;
        let p = xmt_graph::gen::rmat::RmatParams::graph500(10);
        let g = build_undirected(&xmt_graph::gen::rmat::rmat_edges(&p, 4));
        let h = relabel(&g, &degree_ascending_permutation(&g));

        let mut raw_rec = Recorder::new();
        let raw = count_triangles_instrumented(&g, &mut raw_rec);
        let mut ord_rec = Recorder::new();
        let ordered = count_triangles_instrumented(&h, &mut ord_rec);
        assert_eq!(raw, ordered, "count is order-invariant");

        let raw_reads = raw_rec.with_label("count").next().unwrap().counts.reads;
        let ord_reads = ord_rec.with_label("count").next().unwrap().counts.reads;
        assert!(
            ord_reads < raw_reads,
            "ordering should cut reads: {ord_reads} vs {raw_reads}"
        );
    }

    #[test]
    fn binsearch_probes_fewer_on_skewed_pairs() {
        // star-plus-one-edge: leaf lists are length <=2, hub list is huge.
        let mut el = star(4000);
        el.push(1, 2); // triangle (0,1,2)
        let g = build_undirected(&el);
        let mut merge_rec = Recorder::new();
        count_triangles_instrumented(&g, &mut merge_rec);
        let mut bin_rec = Recorder::new();
        assert_eq!(count_triangles_binsearch(&g, Some(&mut bin_rec)), 1);
        let merge_reads = merge_rec.with_label("count").next().unwrap().counts.reads;
        let bin_reads = bin_rec.with_label("count").next().unwrap().counts.reads;
        assert!(
            bin_reads < merge_reads,
            "binary search should win on skew: {bin_reads} vs {merge_reads}"
        );
    }

    #[test]
    fn instrumented_records_single_phase_with_count() {
        let g = build_undirected(&clique(10));
        let mut rec = Recorder::new();
        let count = count_triangles_instrumented(&g, &mut rec);
        assert_eq!(count, clique_triangles(10));
        let r = rec.with_label("count").next().unwrap();
        assert_eq!(r.observed, count);
        assert_eq!(r.counts.writes, count);
        // Key asymmetry vs BSP: writes ≈ triangles, not candidates.
        assert!(r.counts.reads > r.counts.writes);
    }
}
