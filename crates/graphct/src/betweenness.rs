//! Betweenness centrality (Brandes' algorithm), exact or sampled.
//!
//! GraphCT's flagship kernel (paper refs \[7\], \[10\], \[11\]).  Sources are
//! processed in parallel across workers, each with a private accumulator
//! that is merged at the end — the standard coarse-grained
//! parallelization for multi-source centrality.

use parking_lot::Mutex;

use xmt_graph::{Csr, VertexId};
use xmt_par::pfor::parallel_for_chunked;

/// Betweenness centrality.
///
/// `sources = None` computes exact centrality (every vertex as a source);
/// `Some(k)` approximates using the first `k` vertices of a fixed
/// pseudo-random sequence, scaled by `n/k`.  Undirected graphs halve the
/// pair contributions, as usual.
pub fn betweenness_centrality(g: &Csr, sources: Option<usize>) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let source_list: Vec<VertexId> = match sources {
        None => (0..n as u64).collect(),
        Some(k) => pseudo_random_sources(n as u64, k.min(n)),
    };
    let scale = n as f64 / source_list.len() as f64;

    let partials: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());
    let src_ref = &source_list;
    parallel_for_chunked(0, src_ref.len(), 4, |_, range| {
        // lint:allow(no-alloc-in-parallel-for): one private accumulator
        // per chunk is this kernel's merge strategy, not a per-superstep
        // leak — brandes_from allocates its BFS scratch per source anyway.
        let mut acc = vec![0.0f64; n];
        for i in range {
            brandes_from(g, src_ref[i], &mut acc);
        }
        partials.lock().push(acc);
    });

    let mut bc = vec![0.0f64; n];
    for part in partials.into_inner() {
        for (b, p) in bc.iter_mut().zip(part) {
            *b += p;
        }
    }
    let pair_scale = if g.is_directed() { 1.0 } else { 0.5 };
    for b in &mut bc {
        *b *= scale * pair_scale;
    }
    bc
}

/// One Brandes source: BFS with shortest-path counting, then backward
/// dependency accumulation.
fn brandes_from(g: &Csr, s: VertexId, acc: &mut [f64]) {
    let n = g.num_vertices() as usize;
    let mut dist = vec![i64::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();

    dist[s as usize] = 0;
    sigma[s as usize] = 1.0;
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            let u = u as usize;
            if dist[u] == i64::MAX {
                dist[u] = dv + 1;
                queue.push_back(u as VertexId);
            }
            if dist[u] == dv + 1 {
                sigma[u] += sigma[v as usize];
            }
        }
    }

    for &v in order.iter().rev() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            let u = u as usize;
            if dist[u] == dv + 1 && sigma[u] > 0.0 {
                delta[v as usize] += sigma[v as usize] / sigma[u] * (1.0 + delta[u]);
            }
        }
        if v != s {
            acc[v as usize] += delta[v as usize];
        }
    }
}

/// Deterministic pseudo-random source selection (distinct vertices).
fn pseudo_random_sources(n: u64, k: usize) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(k);
    let mut seen = std::collections::HashSet::new();
    let mut x = 0x2545f491_4f6cdd1du64;
    while out.len() < k {
        // xorshift*
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let v = (x.wrapping_mul(0x2545f4914f6cdd1d)) % n;
        if seen.insert(v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::{clique, path, star};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn path_centrality_closed_form() {
        // For a path of n vertices, bc(v_i) = i*(n-1-i) (undirected).
        let n = 7usize;
        let g = build_undirected(&path(n as u64));
        let bc = betweenness_centrality(&g, None);
        for (i, &b) in bc.iter().enumerate() {
            assert_close(b, (i * (n - 1 - i)) as f64);
        }
    }

    #[test]
    fn star_center_carries_all_pairs() {
        let n = 9u64;
        let g = build_undirected(&star(n));
        let bc = betweenness_centrality(&g, None);
        // Center lies on all C(n-1, 2) leaf pairs.
        let leaves = (n - 1) as f64;
        assert_close(bc[0], leaves * (leaves - 1.0) / 2.0);
        for &b in &bc[1..] {
            assert_close(b, 0.0);
        }
    }

    #[test]
    fn clique_has_zero_betweenness() {
        let g = build_undirected(&clique(6));
        let bc = betweenness_centrality(&g, None);
        for &b in &bc {
            assert_close(b, 0.0);
        }
    }

    #[test]
    fn sampled_with_all_sources_equals_exact() {
        let g = build_undirected(&path(6));
        let exact = betweenness_centrality(&g, None);
        let sampled = betweenness_centrality(&g, Some(6));
        for (a, b) in exact.iter().zip(&sampled) {
            assert_close(*a, *b);
        }
    }

    #[test]
    fn sampled_is_unbiased_in_expectation_shape() {
        // On a star, any sample that excludes only leaves still ranks the
        // center far above the leaves.
        let g = build_undirected(&star(50));
        let bc = betweenness_centrality(&g, Some(10));
        let max_leaf = bc[1..].iter().cloned().fold(0.0, f64::max);
        assert!(bc[0] > 10.0 * (max_leaf + 1.0));
    }

    #[test]
    fn empty_graph_is_empty() {
        let g = build_undirected(&xmt_graph::EdgeList::new(0));
        assert!(betweenness_centrality(&g, None).is_empty());
    }
}
