//! PageRank by parallel power iteration (toolkit extra).

use xmt_graph::Csr;
use xmt_par::pfor::parallel_fill;
use xmt_par::reduce;

/// PageRank options.
#[derive(Clone, Copy, Debug)]
pub struct PagerankOptions {
    /// Damping factor (0.85 conventionally).
    pub damping: f64,
    /// Stop when the L1 change drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PagerankOptions {
    fn default() -> Self {
        PagerankOptions {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 200,
        }
    }
}

/// Compute PageRank scores (they sum to 1).
///
/// Pull-based: `pr'[v] = (1−d)/n + d·Σ_{u→v} pr[u]/outdeg(u)`, with the
/// dangling mass redistributed uniformly.  For undirected graphs the
/// stored reverse arcs let the pull iterate directly over `neighbors`.
pub fn pagerank(g: &Csr, opts: PagerankOptions) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    assert!(
        !g.is_directed(),
        "this kernel pulls over stored arcs; pass an undirected (symmetrized) graph or transpose first"
    );
    let nf = n as f64;
    let mut pr = vec![1.0 / nf; n];
    let mut next = vec![0.0f64; n];

    for _ in 0..opts.max_iterations {
        // Dangling vertices donate their mass uniformly.
        let dangling: f64 = reduce::reduce_commutative(
            0,
            n,
            || 0.0f64,
            |acc, v| {
                if g.degree(v as u64) == 0 {
                    acc + pr[v]
                } else {
                    acc
                }
            },
            |a, b| a + b,
        );
        let base = (1.0 - opts.damping) / nf + opts.damping * dangling / nf;

        {
            let pr_ref = &pr;
            parallel_fill(&mut next, |v| {
                let mut sum = 0.0;
                for &u in g.neighbors(v as u64) {
                    sum += pr_ref[u as usize] / g.degree(u) as f64;
                }
                base + opts.damping * sum
            });
        }

        let next_ref = &next;
        let pr_ref = &pr;
        let l1: f64 = reduce::reduce_commutative(
            0,
            n,
            || 0.0f64,
            |acc, v| acc + (next_ref[v] - pr_ref[v]).abs(),
            |a, b| a + b,
        );
        std::mem::swap(&mut pr, &mut next);
        if l1 < opts.tolerance {
            break;
        }
    }
    pr
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::{clique, path, star};

    fn total(pr: &[f64]) -> f64 {
        pr.iter().sum()
    }

    #[test]
    fn scores_sum_to_one() {
        let g = build_undirected(&clique(10));
        let pr = pagerank(&g, PagerankOptions::default());
        assert!((total(&pr) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn symmetry_gives_equal_scores_on_clique() {
        let g = build_undirected(&clique(8));
        let pr = pagerank(&g, PagerankOptions::default());
        for &p in &pr {
            assert!((p - 1.0 / 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn star_center_outranks_leaves() {
        let g = build_undirected(&star(20));
        let pr = pagerank(&g, PagerankOptions::default());
        for &leaf in &pr[1..] {
            assert!(pr[0] > 3.0 * leaf);
        }
        assert!((total(&pr) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn path_ends_rank_lowest() {
        let g = build_undirected(&path(9));
        let pr = pagerank(&g, PagerankOptions::default());
        let min = pr.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((pr[0] - min).abs() < 1e-9 || (pr[8] - min).abs() < 1e-9);
        assert!(pr[4] > pr[0]);
    }

    #[test]
    fn isolated_vertices_get_teleport_mass() {
        let mut el = xmt_graph::EdgeList::new(4);
        el.push(0, 1);
        let g = build_undirected(&el);
        let pr = pagerank(&g, PagerankOptions::default());
        assert!((total(&pr) - 1.0).abs() < 1e-6);
        assert!(pr[2] > 0.0 && pr[3] > 0.0);
    }

    #[test]
    fn respects_iteration_cap() {
        let g = build_undirected(&path(50));
        let one = pagerank(
            &g,
            PagerankOptions {
                max_iterations: 1,
                tolerance: 0.0,
                ..Default::default()
            },
        );
        let many = pagerank(&g, PagerankOptions::default());
        // One iteration is not converged.
        let diff: f64 = one.iter().zip(&many).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6);
    }
}
