//! The GraphCT workflow driver.
//!
//! Paper §II: GraphCT "is designed to enable a workflow of graph
//! analysis algorithms to be developed through a series of function
//! calls.  Graph kernels utilize a single, efficient graph data
//! representation that is stored in main memory and served read-only to
//! analysis applications."  This module is that surface: one read-only
//! [`Csr`], chained kernel invocations, and an accumulated report.

use std::time::Instant;

use xmt_graph::ops::degree::DegreeStats;
use xmt_graph::{Csr, VertexId};

/// The outcome of one workflow step.
#[derive(Clone, Debug)]
pub enum KernelOutput {
    /// Connected components: labels plus component count.
    Components {
        /// Per-vertex component label (minimum member id).
        labels: Vec<VertexId>,
        /// Number of components.
        count: u64,
    },
    /// BFS from a source: distances, parents, level count.
    Bfs {
        /// The traversal source.
        source: VertexId,
        /// Per-vertex hop counts.
        dist: Vec<u64>,
        /// Number of levels (max finite distance + 1).
        levels: u64,
        /// Vertices reached.
        reached: u64,
    },
    /// Triangle counting / clustering.
    Clustering {
        /// Per-vertex local clustering coefficients.
        coefficients: Vec<f64>,
        /// Global triangle count.
        triangles: u64,
        /// Mean coefficient.
        mean: f64,
    },
    /// k-core decomposition.
    Kcore {
        /// Per-vertex core numbers.
        core: Vec<u64>,
        /// The degeneracy (max core number).
        degeneracy: u64,
    },
    /// (Sampled) betweenness centrality.
    Betweenness {
        /// Per-vertex scores.
        scores: Vec<f64>,
        /// The highest-scoring vertex.
        top: VertexId,
    },
    /// Degree statistics.
    Degrees(DegreeStats),
}

/// One executed step: what ran, how long it took on the host, what came
/// out.
#[derive(Clone, Debug)]
pub struct Step {
    /// Kernel name.
    pub kernel: &'static str,
    /// Host wall-clock seconds.
    pub seconds: f64,
    /// The result payload.
    pub output: KernelOutput,
}

/// A chained analysis over one read-only graph.
pub struct Workflow<'g> {
    graph: &'g Csr,
    steps: Vec<Step>,
}

impl<'g> Workflow<'g> {
    /// Start a workflow over `graph`.
    pub fn new(graph: &'g Csr) -> Self {
        Workflow {
            graph,
            steps: Vec::new(),
        }
    }

    /// The graph being analyzed.
    pub fn graph(&self) -> &'g Csr {
        self.graph
    }

    /// Steps executed so far.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    fn record(&mut self, kernel: &'static str, t0: Instant, output: KernelOutput) -> &mut Self {
        self.steps.push(Step {
            kernel,
            seconds: t0.elapsed().as_secs_f64(),
            output,
        });
        self
    }

    /// Run degree statistics.
    pub fn degrees(&mut self) -> &mut Self {
        let t0 = Instant::now();
        let stats = DegreeStats::of(self.graph);
        self.record("degrees", t0, KernelOutput::Degrees(stats))
    }

    /// Run connected components.
    pub fn components(&mut self) -> &mut Self {
        let t0 = Instant::now();
        let labels = crate::connected_components(self.graph);
        let count = crate::components::count_components(&labels);
        self.record("components", t0, KernelOutput::Components { labels, count })
    }

    /// Run BFS from `source`.
    pub fn bfs(&mut self, source: VertexId) -> &mut Self {
        let t0 = Instant::now();
        let r = crate::bfs(self.graph, source);
        let reached = r.dist.iter().filter(|&&d| d != u64::MAX).count() as u64;
        let levels = r.frontier_sizes.len() as u64;
        self.record(
            "bfs",
            t0,
            KernelOutput::Bfs {
                source,
                dist: r.dist,
                levels,
                reached,
            },
        )
    }

    /// Run clustering coefficients (includes triangle counting).
    pub fn clustering(&mut self) -> &mut Self {
        let t0 = Instant::now();
        let (coefficients, triangles) = crate::clustering_coefficients(self.graph);
        let mean = if coefficients.is_empty() {
            0.0
        } else {
            coefficients.iter().sum::<f64>() / coefficients.len() as f64
        };
        self.record(
            "clustering",
            t0,
            KernelOutput::Clustering {
                coefficients,
                triangles,
                mean,
            },
        )
    }

    /// Run the k-core decomposition.
    pub fn kcore(&mut self) -> &mut Self {
        let t0 = Instant::now();
        let core = crate::kcore_decomposition(self.graph);
        let degeneracy = core.iter().max().copied().unwrap_or(0);
        self.record("kcore", t0, KernelOutput::Kcore { core, degeneracy })
    }

    /// Run betweenness centrality with `samples` sources (`None` = exact).
    pub fn betweenness(&mut self, samples: Option<usize>) -> &mut Self {
        let t0 = Instant::now();
        let scores = crate::betweenness_centrality(self.graph, samples);
        let top = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(v, _)| v as VertexId)
            .unwrap_or(0);
        self.record("betweenness", t0, KernelOutput::Betweenness { scores, top })
    }

    /// Fetch the most recent output of a kernel by name.
    pub fn latest(&self, kernel: &str) -> Option<&KernelOutput> {
        self.steps
            .iter()
            .rev()
            .find(|s| s.kernel == kernel)
            .map(|s| &s.output)
    }

    /// A one-line-per-step text report.
    pub fn report(&self) -> String {
        let mut out = format!(
            "workflow over {} vertices / {} edges:\n",
            self.graph.num_vertices(),
            self.graph.num_edges()
        );
        for s in &self.steps {
            let summary = match &s.output {
                KernelOutput::Components { count, .. } => format!("{count} components"),
                KernelOutput::Bfs {
                    source,
                    levels,
                    reached,
                    ..
                } => format!("from {source}: {reached} reached in {levels} levels"),
                KernelOutput::Clustering {
                    triangles, mean, ..
                } => format!("{triangles} triangles, mean cc {mean:.4}"),
                KernelOutput::Kcore { degeneracy, .. } => format!("degeneracy {degeneracy}"),
                KernelOutput::Betweenness { top, .. } => format!("top broker {top}"),
                KernelOutput::Degrees(d) => {
                    format!("mean degree {:.1}, max {}", d.mean, d.max)
                }
            };
            out.push_str(&format!(
                "  {:<12} {:>10.3} ms  {}\n",
                s.kernel,
                s.seconds * 1e3,
                summary
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::builder::build_undirected;
    use xmt_graph::gen::structured::bridged_cliques;

    fn demo_graph() -> Csr {
        build_undirected(&bridged_cliques(5))
    }

    #[test]
    fn chained_workflow_records_every_step() {
        let g = demo_graph();
        let mut w = Workflow::new(&g);
        w.degrees()
            .components()
            .bfs(0)
            .clustering()
            .kcore()
            .betweenness(None);
        assert_eq!(w.steps().len(), 6);
        let names: Vec<&str> = w.steps().iter().map(|s| s.kernel).collect();
        assert_eq!(
            names,
            vec![
                "degrees",
                "components",
                "bfs",
                "clustering",
                "kcore",
                "betweenness"
            ]
        );
    }

    #[test]
    fn outputs_are_correct() {
        let g = demo_graph();
        let mut w = Workflow::new(&g);
        w.components().clustering().kcore();
        match w.latest("components").unwrap() {
            KernelOutput::Components { count, labels } => {
                assert_eq!(*count, 1);
                assert!(labels.iter().all(|&l| l == 0));
            }
            other => panic!("wrong output {other:?}"),
        }
        match w.latest("clustering").unwrap() {
            KernelOutput::Clustering { triangles, .. } => assert_eq!(*triangles, 20),
            other => panic!("wrong output {other:?}"),
        }
        match w.latest("kcore").unwrap() {
            KernelOutput::Kcore { degeneracy, .. } => assert_eq!(*degeneracy, 4),
            other => panic!("wrong output {other:?}"),
        }
    }

    #[test]
    fn latest_returns_most_recent_run() {
        let g = demo_graph();
        let mut w = Workflow::new(&g);
        w.bfs(0).bfs(7);
        match w.latest("bfs").unwrap() {
            KernelOutput::Bfs { source, .. } => assert_eq!(*source, 7),
            other => panic!("wrong output {other:?}"),
        }
        assert!(w.latest("kcore").is_none());
    }

    #[test]
    fn report_mentions_every_kernel() {
        let g = demo_graph();
        let mut w = Workflow::new(&g);
        w.degrees()
            .components()
            .bfs(1)
            .clustering()
            .kcore()
            .betweenness(Some(4));
        let r = w.report();
        for k in [
            "degrees",
            "components",
            "bfs",
            "clustering",
            "kcore",
            "betweenness",
        ] {
            assert!(r.contains(k), "report missing {k}: {r}");
        }
        assert!(r.contains("1 components") || r.contains("components"));
    }
}
