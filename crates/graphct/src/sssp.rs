//! Single-source shortest paths on non-negatively weighted graphs.
//!
//! Frontier-driven parallel Bellman-Ford: each round relaxes the out
//! edges of vertices whose distance improved in the previous round.  This
//! is the shared-memory analogue of the Giraph SSSP runs the paper cites
//! (Kajdanowicz et al. \[23\]).

use std::sync::atomic::{AtomicU64, Ordering};

use xmt_graph::{Csr, VertexId};
use xmt_par::parallel_for;

/// Distance labels from `source`; `u64::MAX` marks unreachable vertices.
pub fn sssp(g: &Csr, source: VertexId) -> Vec<u64> {
    let n = g.num_vertices() as usize;
    assert!((source as usize) < n, "source out of range");
    assert!(g.is_weighted(), "sssp requires arc weights");
    if let Some(ws) = g.raw_weights() {
        assert!(ws.iter().all(|&w| w >= 0), "negative weights unsupported");
    }

    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    // Relaxed: sequential code before any worker sees the array.
    dist[source as usize].store(0, Ordering::Relaxed);

    let mut frontier: Vec<VertexId> = vec![source];
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        assert!(
            rounds <= n + 1,
            "relaxation failed to converge (negative cycle?)"
        );
        let improved: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        {
            let f = &frontier;
            parallel_for(0, f.len(), |i| {
                let v = f[i];
                // Relaxed: distances only decrease; reading a stale
                // (larger) value relaxes with a looser bound that a later
                // round tightens — the fixpoint loop absorbs the race.
                let dv = dist[v as usize].load(Ordering::Relaxed);
                if dv == u64::MAX {
                    return;
                }
                let ws = g.weights_of(v);
                for (j, &u) in g.neighbors(v).iter().enumerate() {
                    let cand = dv.saturating_add(ws[j] as u64);
                    // Relaxed: atomic min on a monotone distance cell.
                    let prev = dist[u as usize].fetch_min(cand, Ordering::Relaxed);
                    if cand < prev {
                        // Relaxed: flag read only after the round's join.
                        improved[u as usize].store(1, Ordering::Relaxed);
                    }
                }
            });
        }
        frontier = (0..n as u64)
            // Relaxed: flags were set before the round's join above.
            .filter(|&v| improved[v as usize].load(Ordering::Relaxed) == 1)
            .collect();
    }

    dist.into_iter().map(AtomicU64::into_inner).collect()
}

/// Serial Dijkstra reference for testing.
pub fn reference_sssp(g: &Csr, source: VertexId) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices() as usize;
    let mut dist = vec![u64::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let ws = g.weights_of(v);
        for (j, &u) in g.neighbors(v).iter().enumerate() {
            let cand = d + ws[j] as u64;
            if cand < dist[u as usize] {
                dist[u as usize] = cand;
                heap.push(Reverse((cand, u)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_graph::{BuildOptions, CsrBuilder, EdgeList};

    fn weighted_graph(n: u64, edges: &[(u64, u64, i64)]) -> Csr {
        let mut el = EdgeList::new(n);
        for &(u, v, w) in edges {
            el.push_weighted(u, v, w);
        }
        CsrBuilder::new(BuildOptions {
            symmetrize: true,
            remove_self_loops: false,
            dedup: false,
            sort: true,
        })
        .build(&el)
    }

    #[test]
    fn picks_the_cheaper_route() {
        // 0 -10- 1, 0 -1- 2, 2 -1- 1: route through 2 costs 2 < 10.
        let g = weighted_graph(3, &[(0, 1, 10), (0, 2, 1), (2, 1, 1)]);
        let d = sssp(&g, 0);
        assert_eq!(d, vec![0, 2, 1]);
    }

    #[test]
    fn unreachable_is_max() {
        let g = weighted_graph(4, &[(0, 1, 3)]);
        let d = sssp(&g, 0);
        assert_eq!(d[2], u64::MAX);
        assert_eq!(d[3], u64::MAX);
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let g = weighted_graph(3, &[(0, 1, 0), (1, 2, 0)]);
        let d = sssp(&g, 0);
        assert_eq!(d, vec![0, 0, 0]);
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..3u64 {
            let el = xmt_graph::gen::er::gnm_weighted(200, 900, 20, seed);
            let g = CsrBuilder::new(BuildOptions {
                symmetrize: true,
                remove_self_loops: true,
                dedup: false,
                sort: true,
            })
            .build(&el);
            let got = sssp(&g, 0);
            let want = reference_sssp(&g, 0);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "requires arc weights")]
    fn unweighted_graph_panics() {
        let g = xmt_graph::builder::build_undirected(&xmt_graph::gen::structured::path(3));
        sssp(&g, 0);
    }

    #[test]
    #[should_panic(expected = "negative weights")]
    fn negative_weights_panic() {
        let g = weighted_graph(2, &[(0, 1, -5)]);
        sssp(&g, 0);
    }
}
