//! Umbrella crate for the reproduction of *"Investigating Graph
//! Algorithms in the BSP Model on the Cray XMT"* (Ediger & Bader,
//! IPDPSW 2013).
//!
//! Re-exports the workspace crates under one roof so the examples and
//! cross-crate integration tests have a single dependency:
//!
//! * [`par`] — XMT-style parallel runtime (substrate);
//! * [`graph`] — CSR graphs, RMAT generator, I/O (substrate);
//! * [`sim`] — discrete-event Threadstorm simulator (substrate);
//! * [`model`] — analytic XMT performance model (substrate);
//! * [`graphct`] — shared-memory baseline kernels;
//! * [`bsp`] — the vertex-centric BSP framework (the paper's
//!   contribution);
//! * [`stinger`] — STINGER-lite streaming graphs with incremental
//!   analytics (the paper's refs 12 and 13 context).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use graphct;
pub use stinger_lite as stinger;
pub use xmt_bsp as bsp;
pub use xmt_graph as graph;
pub use xmt_model as model;
pub use xmt_par as par;
pub use xmt_sim as sim;
