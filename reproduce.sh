#!/bin/sh
# Regenerate every artifact of the reproduction into results/ and the two
# output transcripts. Pass extra flags (e.g. --scale 20) through $FLAGS.
set -e
FLAGS=${FLAGS:-}
OUT=${OUT:-results}

cargo build --workspace --release

for bin in table1 fig1 fig2 fig3 fig4 fig_service service_stream \
           ablation_queue ablation_labelprop ablation_combiner \
           ablation_activeset ablation_intersect ablation_direction \
           micro_native graph500 related_work calibrate; do
  echo "== $bin =="
  cargo run --release -p xmt-bench --bin "$bin" -- --out "$OUT" $FLAGS \
    > "$OUT/$bin.txt" 2>&1
  tail -n 3 "$OUT/$bin.txt"
done

cargo test --workspace 2>&1 | tee test_output.txt | tail -n 3
cargo bench --workspace 2>&1 | tee bench_output.txt | tail -n 3
echo "done: see $OUT/, test_output.txt, bench_output.txt"
