#!/usr/bin/env bash
# Smoke test for the graph-analytics service: start `serve` on an
# ephemeral loopback port, drive it with `client` (register a small RMAT
# graph, run connected components, check the result arrives), then shut
# it down and verify the server exits cleanly.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -q -p xmt-service --bin serve --bin client

out="$(mktemp -d)"
trap 'kill "${server_pid:-}" 2>/dev/null || true; rm -rf "$out"' EXIT

target/release/serve --addr 127.0.0.1:0 --workers 2 --queue 8 >"$out/serve.log" 2>&1 &
server_pid=$!

# The server prints `listening on <addr>` once bound.
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^listening on //p' "$out/serve.log" | head -n1)"
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$out/serve.log"; echo "server died"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$out/serve.log"; echo "server never bound"; exit 1; }
echo "serve bound on $addr"

# Register, submit, and fetch a CC result plus its superstep trace —
# once on the default (sim) engine and once on the native engine;
# `client` exits non-zero on any error response.
target/release/client --addr "$addr" \
    '{"op":"ping"}' \
    '{"op":"register_graph","name":"smoke","kind":"rmat","scale":8,"edge_factor":8,"seed":1}' \
    '{"op":"submit","algorithm":"cc","graph":"smoke"}' \
    '{"op":"result","job_id":1,"wait_ms":60000}' \
    '{"op":"trace","job_id":1}' \
    '{"op":"submit","algorithm":"cc","graph":"smoke","engine":"native"}' \
    '{"op":"result","job_id":2,"wait_ms":60000}' \
    '{"op":"trace","job_id":2}' \
    '{"op":"stats"}' \
    >"$out/client.log"

grep -q '"labels":\[' "$out/client.log" || { cat "$out/client.log"; echo "no CC result"; exit 1; }
echo "CC result received"

# The default build has tracing on: the trace must carry per-superstep
# records with real timings, on both engines.
grep -q '"label":"cc/bsp"' "$out/client.log" || { cat "$out/client.log"; echo "no trace"; exit 1; }
grep -q '"label":"cc/native"' "$out/client.log" || { cat "$out/client.log"; echo "no native trace"; exit 1; }
grep -q '"total_ns":' "$out/client.log" || { cat "$out/client.log"; echo "trace has no timings"; exit 1; }
echo "superstep traces received (sim + native)"

# Streaming path: register a dynamic graph, land an update batch, then
# check that a post-update full recompute (native) and the incrementally
# maintained answer both see the batch, and that the update trace and
# registry counters recorded it.
target/release/client --addr "$addr" \
    '{"op":"register_graph","name":"dyn","kind":"path","n":16,"dynamic":true}' \
    '{"op":"update","graph":"dyn","insert":[[0,8]],"delete":[[3,4]]}' \
    '{"op":"submit","algorithm":"cc","graph":"dyn","engine":"native"}' \
    '{"op":"result","job_id":3,"wait_ms":60000}' \
    '{"op":"submit","algorithm":"cc","graph":"dyn","engine":"incremental"}' \
    '{"op":"result","job_id":4,"wait_ms":60000}' \
    '{"op":"trace","graph":"dyn"}' \
    '{"op":"stats"}' \
    >"$out/stream.log"

grep -q '"inserted":1' "$out/stream.log" || { cat "$out/stream.log"; echo "update batch did not land"; exit 1; }
# Path 0-..-15 minus (3,4) plus (0,8) stays one component: every label 0.
grep -q '"labels":\[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0\]' "$out/stream.log" \
    || { cat "$out/stream.log"; echo "post-update CC wrong"; exit 1; }
grep -q '"updates":\[' "$out/stream.log" || { cat "$out/stream.log"; echo "no update trace"; exit 1; }
grep -q '"batches_applied":1' "$out/stream.log" || { cat "$out/stream.log"; echo "stats missed the batch"; exit 1; }
echo "streaming update + post-update CC verified (native + incremental)"

target/release/client --addr "$addr" '{"op":"shutdown"}' >/dev/null

# Clean shutdown: the server process must exit on its own.
for _ in $(seq 1 50); do
    kill -0 "$server_pid" 2>/dev/null || { echo "server shut down cleanly"; exit 0; }
    sleep 0.1
done
echo "server did not exit after shutdown"
exit 1
