//! Property-based tests (proptest) over the core data structures and the
//! algorithm invariants listed in DESIGN.md §8.

use proptest::prelude::*;

use xmt_bsp_repro::bsp::algorithms as bsp_alg;
use xmt_bsp_repro::graph::builder::{build_directed, build_undirected};
use xmt_bsp_repro::graph::io::{
    read_csr_binary, read_edge_list, write_csr_binary, write_edge_list,
};
use xmt_bsp_repro::graph::validate::{
    reference_bfs, reference_components, reference_triangles, validate_bfs, validate_components,
};
use xmt_bsp_repro::graph::EdgeList;
use xmt_bsp_repro::graphct;
use xmt_bsp_repro::par;

/// Strategy: a random edge list over `1..=n` vertices.
fn arb_edge_list(max_n: u64, max_m: usize) -> impl Strategy<Value = EdgeList> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |edges| EdgeList {
            num_vertices: n,
            edges,
            weights: None,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_preserves_degree_sums(el in arb_edge_list(64, 300)) {
        let g = build_directed(&el);
        prop_assert_eq!(g.num_arcs() as usize, el.num_edges());
        let degsum: u64 = (0..g.num_vertices()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum as usize, el.num_edges());
    }

    #[test]
    fn undirected_csr_is_symmetric_and_simple(el in arb_edge_list(48, 200)) {
        let g = build_undirected(&el);
        for v in 0..g.num_vertices() {
            let nbrs = g.neighbors(v);
            // Sorted, no self loops, no duplicates.
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "v={v} {nbrs:?}");
            prop_assert!(!nbrs.contains(&v));
            // Symmetry.
            for &u in nbrs {
                prop_assert!(g.has_arc(u, v), "missing reverse of {v}->{u}");
            }
        }
    }

    #[test]
    fn binary_io_roundtrips(el in arb_edge_list(40, 150)) {
        let g = build_undirected(&el);
        let mut buf = Vec::new();
        write_csr_binary(&mut buf, &g).unwrap();
        let back = read_csr_binary(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn text_io_roundtrips(el in arb_edge_list(40, 150)) {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &el).unwrap();
        let back = read_edge_list(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.edges, el.edges);
    }

    #[test]
    fn components_are_a_minimal_fixed_point(el in arb_edge_list(48, 200)) {
        let g = build_undirected(&el);
        let labels = graphct::connected_components(&g);
        prop_assert!(validate_components(&g, &labels).is_ok());
        prop_assert_eq!(&labels, &reference_components(&g));
        let bsp = bsp_alg::components::bsp_connected_components(&g, None);
        prop_assert_eq!(&bsp.states, &labels);
    }

    #[test]
    fn bfs_distance_recurrence_holds(el in arb_edge_list(48, 200), src_sel in 0u64..48) {
        let g = build_undirected(&el);
        let source = src_sel % g.num_vertices();
        let r = graphct::bfs(&g, source);
        prop_assert!(validate_bfs(&g, source, &r.dist, &r.parent).is_ok());
        let (ref_dist, _) = reference_bfs(&g, source);
        prop_assert_eq!(&r.dist, &ref_dist);
        let b = bsp_alg::bfs::bsp_bfs(&g, source, None);
        prop_assert_eq!(&b.dist(), &ref_dist);
        // Frontier sizes sum to the number of reached vertices.
        let reached = r.dist.iter().filter(|&&d| d != u64::MAX).count() as u64;
        prop_assert_eq!(r.frontier_sizes.iter().sum::<u64>(), reached);
    }

    #[test]
    fn beamer_auto_bfs_matches_reference_on_rmat(scale in 4u32..8, seed in 0u64..6, src_sel in 0u64..1_000_000) {
        use xmt_bsp_repro::bsp::runtime::{BspConfig, Delivery};
        use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};
        let g = build_undirected(&rmat_edges(&RmatParams::graph500(scale), seed));
        let source = src_sel % g.num_vertices();
        let (ref_dist, _) = reference_bfs(&g, source);
        // Beamer Auto flips the heavy supersteps bottom-up; the
        // distances must nevertheless equal the serial reference, and
        // so must graphct's direction-optimized shared-memory BFS.
        let config = BspConfig { delivery: Delivery::Auto, ..BspConfig::default() };
        let b = bsp_alg::bfs::bsp_bfs_with_config(&g, source, config, None);
        prop_assert_eq!(&b.dist(), &ref_dist);
        let ct = graphct::bfs(&g, source);
        prop_assert_eq!(&ct.dist, &ref_dist);
        prop_assert!(validate_bfs(&g, source, &ct.dist, &ct.parent).is_ok());
    }

    #[test]
    fn triangle_counts_match_brute_force(el in arb_edge_list(32, 160)) {
        let g = build_undirected(&el);
        let want = reference_triangles(&g);
        prop_assert_eq!(graphct::count_triangles(&g), want);
        prop_assert_eq!(bsp_alg::triangles::bsp_count_triangles(&g, None), want);
    }

    #[test]
    fn triangle_strategies_agree_on_rmat(scale in 4u32..8, seed in 0u64..6) {
        use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};
        let g = build_undirected(&rmat_edges(&RmatParams::graph500(scale), seed));
        let want = reference_triangles(&g);
        for exec in [par::Executor::fixed(), par::Executor::guided()] {
            for strategy in graphct::IntersectStrategy::ALL {
                // Degree-ordered DAG sweep (the optimized path) ...
                prop_assert_eq!(
                    graphct::count_triangles_with(&g, strategy, None, &exec),
                    want,
                    "dag strategy {} on {:?}", strategy.name(), exec
                );
                // ... and the id-order sweep it replaced.
                prop_assert_eq!(
                    graphct::count_triangles_idorder(&g, strategy, None, &exec),
                    want,
                    "idorder strategy {} on {:?}", strategy.name(), exec
                );
            }
        }
    }

    #[test]
    fn triangle_strategies_agree_on_gnm(n in 8u64..64, m in 0u64..300, seed in 0u64..6) {
        use xmt_bsp_repro::graph::gen::er::gnm;
        let g = build_undirected(&gnm(n, m, seed));
        let want = reference_triangles(&g);
        for exec in [par::Executor::fixed(), par::Executor::guided()] {
            for strategy in graphct::IntersectStrategy::ALL {
                prop_assert_eq!(
                    graphct::count_triangles_with(&g, strategy, None, &exec),
                    want,
                    "dag strategy {} on {:?}", strategy.name(), exec
                );
            }
        }
    }

    #[test]
    fn clustering_coefficients_are_probabilities(el in arb_edge_list(32, 160)) {
        let g = build_undirected(&el);
        let (cc, _) = graphct::clustering_coefficients(&g);
        for (v, &c) in cc.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&c), "cc[{v}]={c}");
        }
    }

    #[test]
    fn prefix_sum_matches_sequential(values in proptest::collection::vec(0u64..1000, 0..2000)) {
        let mut par_v = values.clone();
        let mut seq_v = values;
        let tp = par::exclusive_prefix_sum(&mut par_v);
        let ts = par::exclusive_prefix_sum_seq(&mut seq_v);
        prop_assert_eq!(tp, ts);
        prop_assert_eq!(par_v, seq_v);
    }

    #[test]
    fn kcore_is_monotone_under_edge_removal(el in arb_edge_list(24, 100)) {
        let g = build_undirected(&el);
        let core = graphct::kcore_decomposition(&g);
        // Dropping edges can only lower core numbers.
        if el.num_edges() > 1 {
            let half = EdgeList {
                num_vertices: el.num_vertices,
                edges: el.edges[..el.num_edges() / 2].to_vec(),
                weights: None,
            };
            let h = build_undirected(&half);
            let core_h = graphct::kcore_decomposition(&h);
            for v in 0..el.num_vertices as usize {
                prop_assert!(core_h[v] <= core[v], "v={v}");
            }
        }
    }

    #[test]
    fn inbox_delivery_is_exactly_once(
        sends in proptest::collection::vec((0u64..32, 0u64..1000), 0..400),
        workers in 1usize..6,
    ) {
        use xmt_bsp_repro::bsp::Inbox;
        // Split sends across worker batches arbitrarily (round-robin).
        let mut batches: Vec<Vec<(u64, u64)>> = vec![Vec::new(); workers];
        for (i, &s) in sends.iter().enumerate() {
            batches[i % workers].push(s);
        }
        let ib = Inbox::build(32, &batches, None);
        prop_assert_eq!(ib.total_messages() as usize, sends.len());
        // Every vertex's multiset of payloads matches what was sent.
        for v in 0..32u64 {
            let mut got: Vec<u64> = ib.messages(v).to_vec();
            let mut want: Vec<u64> = sends.iter().filter(|&&(d, _)| d == v).map(|&(_, m)| m).collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "vertex {}", v);
        }
    }

    #[test]
    fn rmat_is_scale_bounded(scale in 4u32..9, seed in 0u64..8) {
        use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};
        let p = RmatParams::graph500(scale);
        let el = rmat_edges(&p, seed);
        prop_assert!(el.is_consistent());
        prop_assert_eq!(el.num_vertices, 1u64 << scale);
        prop_assert_eq!(el.num_edges() as u64, (1u64 << scale) * 16);
    }

    #[test]
    fn atomic_min_is_linearizable_to_global_min(values in proptest::collection::vec(0u64..u64::MAX - 1, 1..500)) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cell = AtomicU64::new(u64::MAX);
        let vref = &values;
        par::parallel_for(0, vref.len(), |i| {
            par::atomic::fetch_min(&cell, vref[i]);
        });
        prop_assert_eq!(cell.load(Ordering::Relaxed), *values.iter().min().unwrap());
    }
}
