//! End-to-end tests for the streaming subsystem over the wire: dynamic
//! registration, `update` batches, snapshot-isolated analytics, the
//! incremental engine, budget re-accounting, and the streaming stats
//! and trace surfaces — all through a real TCP server on loopback.

use std::thread;

use serde::Content;
use xmt_graph::builder::build_undirected;
use xmt_graph::gen::structured::path;
use xmt_graph::validate::reference_components;
use xmt_service::client::{field, field_bool, field_str, field_u64};
use xmt_service::{Client, Server, ServiceConfig};

fn start_server(config: ServiceConfig) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().to_string();
    (addr, server.spawn())
}

fn unbounded() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        memory_budget_bytes: 0,
    }
}

fn request(client: &mut Client, line: &str) -> Content {
    client.request_line(line).expect("request")
}

fn ok(client: &mut Client, line: &str) -> Content {
    let r = request(client, line);
    assert_eq!(field_str(&r, "status"), Some("ok"), "{line} -> {r:?}");
    r
}

/// Submit a job line, wait for its result tree.
fn run_job(client: &mut Client, job_json: &str) -> Content {
    let r = ok(client, job_json);
    let id = field_u64(&r, "job_id").expect("job id");
    ok(
        client,
        &format!(r#"{{"op":"result","job_id":{id},"wait_ms":120000}}"#),
    )
}

fn labels_of(response: &Content) -> Vec<u64> {
    let result = field(response, "result").expect("result field");
    let Some(Content::Seq(items)) = field(result, "labels") else {
        panic!("labels missing in {response:?}");
    };
    items
        .iter()
        .map(|i| match i {
            Content::U64(v) => *v,
            Content::I64(v) => *v as u64,
            other => panic!("non-integer label {other:?}"),
        })
        .collect()
}

fn triangles_of(response: &Content) -> u64 {
    let result = field(response, "result").expect("result field");
    field_u64(result, "triangles").expect("triangles field")
}

fn shutdown(mut client: Client, server: thread::JoinHandle<()>) {
    let _ = client.request_line(r#"{"op":"shutdown"}"#);
    drop(client);
    server.join().expect("server thread");
}

#[test]
fn update_batches_flow_through_the_wire() {
    let (addr, server) = start_server(unbounded());
    let mut client = Client::connect(&addr).expect("connect");

    // A 12-vertex path, registered dynamic.
    let r = ok(
        &mut client,
        r#"{"op":"register_graph","name":"d","kind":"path","n":12,"dynamic":true}"#,
    );
    let g = field(&r, "graph").expect("graph info");
    assert_eq!(field_bool(g, "dynamic"), Some(true));
    assert_eq!(field_u64(g, "epoch"), Some(0));
    assert_eq!(field_u64(g, "edges"), Some(11));

    // Close two triangles and cut the path in half.
    let r = ok(
        &mut client,
        r#"{"op":"update","graph":"d","insert":[[0,2],[1,3]],"delete":[[6,7]]}"#,
    );
    let u = field(&r, "update").expect("update outcome");
    assert_eq!(field_u64(u, "epoch"), Some(1));
    assert_eq!(field_u64(u, "inserted"), Some(2));
    assert_eq!(field_u64(u, "deleted"), Some(1));
    assert_eq!(field_u64(u, "edges"), Some(12));

    // Expected state, computed directly.
    let mut expect =
        xmt_bsp_repro::stinger::StreamingAnalytics::from_csr(&build_undirected(&path(12)));
    expect
        .apply_batch(&xmt_service::batch_ops(&[(0, 2), (1, 3)], &[(6, 7)]))
        .expect("in-range batch");
    let csr = expect.graph().to_csr();
    let want_labels = reference_components(&csr);
    let want_triangles = xmt_bsp_repro::graphct::count_triangles(&csr);
    assert_eq!(want_triangles, 2, "test graph should hold two triangles");

    // Every engine answers against the post-batch snapshot, and the
    // incremental engine agrees with the recomputing ones.
    for engine in ["incremental", "bsp", "native", "graphct"] {
        let r = run_job(
            &mut client,
            &format!(r#"{{"op":"submit","algorithm":"cc","engine":"{engine}","graph":"d"}}"#),
        );
        assert_eq!(labels_of(&r), want_labels, "cc on `{engine}` diverged");
        let r = run_job(
            &mut client,
            &format!(
                r#"{{"op":"submit","algorithm":"triangles","engine":"{engine}","graph":"d"}}"#
            ),
        );
        assert_eq!(
            triangles_of(&r),
            want_triangles,
            "triangles on `{engine}` diverged"
        );
    }

    // The incremental answer costs zero supersteps and reports the
    // admission epoch in its snapshot.
    let r = ok(
        &mut client,
        r#"{"op":"submit","algorithm":"cc","engine":"inc","graph":"d"}"#,
    );
    let id = field_u64(&r, "job_id").expect("job id");
    let r = ok(
        &mut client,
        &format!(r#"{{"op":"result","job_id":{id},"wait_ms":120000}}"#),
    );
    assert_eq!(field_u64(&r, "supersteps"), Some(0), "{r:?}");
    let r = ok(&mut client, &format!(r#"{{"op":"status","job_id":{id}}}"#));
    let job = field(&r, "job").expect("job");
    assert_eq!(field_u64(job, "epoch"), Some(1));

    // Streaming counters ride the stats op.
    let r = ok(&mut client, r#"{"op":"stats"}"#);
    let stats = field(&r, "stats").expect("stats");
    let registry = field(stats, "registry").expect("registry");
    assert_eq!(field_u64(registry, "dynamic_graphs"), Some(1));
    assert_eq!(field_u64(registry, "batches_applied"), Some(1));
    assert_eq!(field_u64(registry, "edges_inserted"), Some(2));
    assert_eq!(field_u64(registry, "edges_deleted"), Some(1));
    assert!(field_u64(registry, "snapshot_epochs_live").expect("gauge") >= 1);

    // The graph-targeted trace lists the applied batch.
    let r = ok(&mut client, r#"{"op":"trace","graph":"d"}"#);
    let trace = field(&r, "trace").expect("trace");
    assert_eq!(field_str(trace, "graph"), Some("d"));
    let Some(Content::Seq(updates)) = field(trace, "updates") else {
        panic!("trace.updates missing: {r:?}");
    };
    // The root test build enables the service's `trace` feature.
    assert_eq!(updates.len(), 1, "{r:?}");
    assert_eq!(field_u64(&updates[0], "epoch"), Some(1));
    assert_eq!(field_u64(&updates[0], "inserted"), Some(2));
    assert_eq!(field_u64(&updates[0], "deleted"), Some(1));

    // Static graphs refuse updates and the incremental engine, typed.
    let _ = ok(
        &mut client,
        r#"{"op":"register_graph","name":"s","kind":"path","n":12}"#,
    );
    let r = request(
        &mut client,
        r#"{"op":"update","graph":"s","insert":[[0,2]]}"#,
    );
    assert_eq!(field_str(&r, "code"), Some("not_dynamic"), "{r:?}");
    let r = request(
        &mut client,
        r#"{"op":"submit","algorithm":"cc","engine":"incremental","graph":"s"}"#,
    );
    assert_eq!(field_str(&r, "code"), Some("not_dynamic"), "{r:?}");

    // Out-of-range endpoints are a bad_request, not a panic.
    let r = request(
        &mut client,
        r#"{"op":"update","graph":"d","insert":[[0,999]]}"#,
    );
    assert_eq!(field_str(&r, "code"), Some("bad_request"), "{r:?}");

    shutdown(client, server);
}

#[test]
fn snapshot_isolation_holds_across_deadline_checkpoint_resume() {
    let (addr, server) = start_server(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        memory_budget_bytes: 0,
    });
    let mut client = Client::connect(&addr).expect("connect");
    let _ = ok(
        &mut client,
        r#"{"op":"register_graph","name":"d","kind":"path","n":16000,"dynamic":true}"#,
    );

    // A CC run long enough (one superstep per hop) to guarantee the
    // 10 ms deadline cuts it mid-flight.
    let cfg = serde_json::to_string(&xmt_bsp::BspConfig {
        active_set: xmt_bsp::ActiveSetStrategy::Worklist,
        max_supersteps: 1_000_000,
        ..xmt_bsp::BspConfig::default()
    })
    .expect("serialize config");
    let r = ok(
        &mut client,
        &format!(
            r#"{{"op":"submit","algorithm":"cc","graph":"d","config":{cfg},"deadline_ms":10}}"#
        ),
    );
    let id = field_u64(&r, "job_id").expect("job id");
    let r = request(
        &mut client,
        &format!(r#"{{"op":"result","job_id":{id},"wait_ms":120000}}"#),
    );
    assert_eq!(field_str(&r, "code"), Some("wrong_state"), "{r:?}");
    let r = ok(&mut client, &format!(r#"{{"op":"status","job_id":{id}}}"#));
    let job = field(&r, "job").expect("job");
    assert_eq!(field_str(job, "state"), Some("timed_out"), "{r:?}");
    assert_eq!(field_u64(job, "epoch"), Some(0));

    // While the job sits checkpointed, a batch splits the path in two.
    // The post-batch graph has a second component rooted at 8001.
    let r = ok(
        &mut client,
        r#"{"op":"update","graph":"d","delete":[[8000,8001]]}"#,
    );
    let u = field(&r, "update").expect("update outcome");
    assert_eq!(field_u64(u, "epoch"), Some(1));
    assert_eq!(field_u64(u, "deleted"), Some(1));

    // Resume: the continuation must finish against the PRE-batch
    // snapshot — one component, every label 0 — even though the
    // registry's current epoch no longer contains that graph.
    let r = ok(&mut client, &format!(r#"{{"op":"resume","job_id":{id}}}"#));
    let resumed = field_u64(&r, "job_id").expect("resumed id");
    let r = ok(
        &mut client,
        &format!(r#"{{"op":"result","job_id":{resumed},"wait_ms":120000}}"#),
    );
    let labels = labels_of(&r);
    assert_eq!(labels.len(), 16_000);
    assert!(
        labels.iter().all(|&l| l == 0),
        "resumed job observed the mid-run batch"
    );
    let r = ok(
        &mut client,
        &format!(r#"{{"op":"status","job_id":{resumed}}}"#),
    );
    let job = field(&r, "job").expect("job");
    assert_eq!(
        field_u64(job, "epoch"),
        Some(0),
        "resume re-admitted against a newer epoch"
    );

    // A job admitted AFTER the batch sees the split graph.
    let r = run_job(
        &mut client,
        &format!(r#"{{"op":"submit","algorithm":"cc","graph":"d","config":{cfg}}}"#),
    );
    let labels = labels_of(&r);
    assert!(
        labels[..=8000].iter().all(|&l| l == 0) && labels[8001..].iter().all(|&l| l == 8001),
        "post-batch job did not see the new epoch"
    );

    // ... and the incremental engine agrees instantly.
    let r = run_job(
        &mut client,
        r#"{"op":"submit","algorithm":"cc","engine":"incremental","graph":"d"}"#,
    );
    let inc = labels_of(&r);
    assert!(inc[..=8000].iter().all(|&l| l == 0) && inc[8001..].iter().all(|&l| l == 8001));

    shutdown(client, server);
}

#[test]
fn update_budget_rejections_are_typed_and_apply_nothing() {
    // Budget: room for the dynamic path plus a hair, so a densifying
    // batch trips the re-cost.
    let n = 64u64;
    let seed_cost = {
        // Mirror of the service's deterministic dynamic cost model:
        // analytics state + one CSR snapshot (see DESIGN.md §13).
        let vec_header = std::mem::size_of::<Vec<u64>>();
        let m = (n - 1) as usize;
        n as usize * vec_header + 2 * m * 8 + 2 * n as usize * 8 + (n as usize + 1) * 8 + 2 * m * 8
    };
    let (addr, server) = start_server(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        memory_budget_bytes: seed_cost + 64,
    });
    let mut client = Client::connect(&addr).expect("connect");
    let _ = ok(
        &mut client,
        &format!(r#"{{"op":"register_graph","name":"d","kind":"path","n":{n},"dynamic":true}}"#),
    );

    // ~2k new edges cost far more than the 64 spare bytes.
    let inserts: Vec<String> = (0..n)
        .flat_map(|u| (u + 2..n).map(move |v| format!("[{u},{v}]")))
        .collect();
    let r = request(
        &mut client,
        &format!(
            r#"{{"op":"update","graph":"d","insert":[{}]}}"#,
            inserts.join(",")
        ),
    );
    assert_eq!(field_str(&r, "code"), Some("budget_exceeded"), "{r:?}");

    // Nothing was applied: the graph still answers as the seed path.
    let r = ok(&mut client, r#"{"op":"list_graphs"}"#);
    let Some(Content::Seq(graphs)) = field(&r, "graphs") else {
        panic!("graphs missing: {r:?}");
    };
    assert_eq!(field_u64(&graphs[0], "edges"), Some(n - 1));
    assert_eq!(field_u64(&graphs[0], "epoch"), Some(0));

    // A batch that fits under the budget still lands afterwards.
    let r = ok(
        &mut client,
        r#"{"op":"update","graph":"d","insert":[[0,2]]}"#,
    );
    let u = field(&r, "update").expect("update outcome");
    assert_eq!(field_u64(u, "inserted"), Some(1));
    assert_eq!(field_u64(u, "epoch"), Some(1));

    shutdown(client, server);
}
