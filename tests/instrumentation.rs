//! Pins the instrumentation formulas the performance model consumes —
//! every figure depends on these counts, so changes must be deliberate.

use xmt_bsp_repro::bsp::algorithms::components::CcProgram;
use xmt_bsp_repro::bsp::runtime::{run_bsp, BspConfig};
use xmt_bsp_repro::bsp::{ActiveSetStrategy, Transport};
use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::gen::structured::{clique, path, star};
use xmt_bsp_repro::graphct;
use xmt_bsp_repro::model::Recorder;

#[test]
fn bsp_superstep_zero_counts_on_a_star() {
    // star(5): center 0 with 4 leaves; 8 arcs.
    let g = build_undirected(&star(5));
    let mut rec = Recorder::new();
    let r = run_bsp(&g, &CcProgram, BspConfig::default(), Some(&mut rec));
    assert!(!r.hit_superstep_limit);

    // Superstep 0: all 5 vertices active, each broadcasts its label to
    // every neighbor => messages == arcs == 8.
    assert_eq!(r.superstep_stats[0].active, 5);
    assert_eq!(r.superstep_stats[0].messages_sent, 8);

    let ss0 = rec.with_label("superstep").next().unwrap();
    assert_eq!(ss0.step, 0);
    assert_eq!(ss0.observed, 8);
    // items = max(active, messages).
    assert_eq!(ss0.counts.items, 8);
    // reads = 2*active + delivered(0) + sent; writes = 2*active.
    assert_eq!(ss0.counts.reads, 2 * 5 + 8);
    assert_eq!(ss0.counts.writes, 2 * 5);

    // Exchange 0: per message (1 word): 2 enqueue writes + 1 scatter
    // write + n offset writes; items = max(n, messages).
    let ex0 = rec.with_label("exchange").next().unwrap();
    assert_eq!(ex0.counts.items, 8);
    assert_eq!(ex0.counts.writes, 8 * 2 + 8 + 5);
    assert_eq!(ex0.counts.reads, 8 * 2 + 5);
    // Outbox transport: the only hotspot ops are the chunk claims of the
    // self-scheduled loop (<= one per item), never per-message.
    assert!(ex0.counts.hotspot_ops <= ex0.counts.items);
    assert_eq!(ex0.counts.barriers, 2);
}

#[test]
fn dense_scan_charges_the_whole_vertex_set_every_superstep() {
    let g = build_undirected(&path(100));
    let mut rec = Recorder::new();
    run_bsp(&g, &CcProgram, BspConfig::default(), Some(&mut rec));
    for scan in rec.with_label("scan") {
        assert_eq!(scan.counts.items, 100);
        assert_eq!(scan.counts.reads, 300, "3 reads per vertex");
    }
}

#[test]
fn worklist_scan_charges_only_the_active_set() {
    let g = build_undirected(&path(100));
    let mut rec = Recorder::new();
    run_bsp(
        &g,
        &CcProgram,
        BspConfig {
            active_set: ActiveSetStrategy::Worklist,
            ..Default::default()
        },
        Some(&mut rec),
    );
    // After superstep 0 the active set shrinks; scans must track it.
    let scans: Vec<_> = rec.with_label("scan").collect();
    assert!(scans.iter().skip(1).any(|s| s.counts.items < 100));
    for s in &scans {
        assert_eq!(s.counts.reads, s.observed, "1 read per active vertex");
    }
}

#[test]
fn single_queue_charges_one_hotspot_op_per_message() {
    // The difference between the two transports' exchange hotspot charge
    // must be exactly the message count (the §VII fetch-add per message);
    // loop-claim overhead is identical on both sides and cancels.
    let g = build_undirected(&clique(10));
    let mut outbox_rec = Recorder::new();
    run_bsp(&g, &CcProgram, BspConfig::default(), Some(&mut outbox_rec));
    let mut queue_rec = Recorder::new();
    run_bsp(
        &g,
        &CcProgram,
        BspConfig {
            transport: Transport::SingleQueue,
            ..Default::default()
        },
        Some(&mut queue_rec),
    );
    for (a, b) in outbox_rec
        .with_label("exchange")
        .zip(queue_rec.with_label("exchange"))
    {
        assert_eq!(a.observed, b.observed, "same messages either way");
        assert_eq!(
            b.counts.hotspot_ops - a.counts.hotspot_ops,
            b.observed,
            "queue pays one hotspot op per message"
        );
    }
}

#[test]
fn graphct_cc_iteration_counts_are_edge_proportional() {
    let g = build_undirected(&path(50)); // 98 arcs
    let mut rec = Recorder::new();
    graphct::connected_components_instrumented(&g, &mut rec);
    let first = rec.with_label("iteration").next().unwrap();
    // Hook sweep reads: n (own labels) + arcs (neighbor labels) + the
    // compress pass (>= 2n).
    assert!(first.counts.reads >= 50 + 98 + 100);
    assert_eq!(first.counts.items, 98, "items = arcs");
    assert_eq!(first.counts.barriers, 2, "hook + compress");
}

#[test]
fn graphct_bfs_level_counts_match_the_frontier() {
    let g = build_undirected(&star(50));
    let mut rec = Recorder::new();
    let r = graphct::bfs_instrumented(&g, 0, &mut rec);
    assert_eq!(r.frontier_sizes, vec![1, 49]);
    let levels: Vec<_> = rec.with_label("level").collect();
    // The hub frontier carries half the arcs, so the Beamer alpha rule
    // flips level 0 bottom-up: 49 unvisited leaves each probe their one
    // neighbor against the frontier bitmap and discover themselves.
    assert_eq!(levels[0].observed, 1);
    assert_eq!(
        levels[0].counts.atomics,
        49 + 1,
        "queue cursor per discovery plus one frontier-bitmap set"
    );
    assert!(
        levels[0].counts.hotspot_ops >= 49,
        "queue cursor per discovery (plus loop claims)"
    );
    // Level 1: everything is visited; the beta rule keeps the dense
    // frontier bottom-up, but no probes run and nothing is discovered.
    // The only atomics are the 49 frontier-bitmap sets.
    assert_eq!(levels[1].observed, 49);
    assert_eq!(levels[1].counts.atomics, 49);
}

#[test]
fn tc_write_counts_separate_the_two_models() {
    // K6: 20 triangles, 15 edges. The BSP variant writes per message;
    // the paper-faithful merge kernel writes once per triangle.
    let g = build_undirected(&clique(6));
    let mut ct_rec = Recorder::new();
    let tri = graphct::count_triangles_idorder(
        &g,
        graphct::IntersectStrategy::Merge,
        Some(&mut ct_rec),
        &xmt_bsp_repro::par::Executor::fixed(),
    );
    assert_eq!(tri, 20);
    let ct_writes: u64 = ct_rec.records.iter().map(|r| r.counts.writes).sum();
    assert_eq!(ct_writes, 20, "one write per triangle");

    let mut bsp_rec = Recorder::new();
    let bsp_tri =
        xmt_bsp_repro::bsp::algorithms::triangles::bsp_count_triangles(&g, Some(&mut bsp_rec));
    assert_eq!(bsp_tri, 20);
    let bsp_writes: u64 = bsp_rec.records.iter().map(|r| r.counts.writes).sum();
    assert!(
        bsp_writes > 5 * ct_writes,
        "BSP writes {bsp_writes} must dwarf shared {ct_writes}"
    );
}
