//! The paper's core experimental control: the BSP and shared-memory
//! implementations must compute identical answers on the same graph —
//! only the programming model (and hence the execution profile) differs.

use xmt_bsp_repro::bsp::algorithms as bsp_alg;
use xmt_bsp_repro::bsp::runtime::BspConfig;
use xmt_bsp_repro::bsp::{ActiveSetStrategy, Delivery, Transport};
use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::gen::er::gnm;
use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};
use xmt_bsp_repro::graph::gen::structured::*;
use xmt_bsp_repro::graph::validate::{
    reference_bfs, reference_components, reference_triangles, validate_bfs, validate_components,
};
use xmt_bsp_repro::graph::Csr;
use xmt_bsp_repro::graphct;

fn graph_zoo() -> Vec<(&'static str, Csr)> {
    let mut zoo: Vec<(&'static str, Csr)> = vec![
        ("path", build_undirected(&path(64))),
        ("ring", build_undirected(&ring(51))),
        ("star", build_undirected(&star(80))),
        ("clique", build_undirected(&clique(24))),
        ("grid", build_undirected(&grid(9, 11))),
        ("btree", build_undirected(&binary_tree(127))),
        ("cliques", build_undirected(&disjoint_cliques(5, 7))),
        ("bridged", build_undirected(&bridged_cliques(9))),
    ];
    for seed in 0..3 {
        zoo.push(("gnm", build_undirected(&gnm(400, 1600, seed))));
    }
    zoo.push((
        "rmat",
        build_undirected(&rmat_edges(&RmatParams::graph500(10), 42)),
    ));
    zoo
}

#[test]
fn connected_components_agree_everywhere() {
    for (name, g) in graph_zoo() {
        let shared = graphct::connected_components(&g);
        let bsp = bsp_alg::components::bsp_connected_components(&g, None);
        let serial = reference_components(&g);
        assert_eq!(shared, serial, "{name}: shared vs serial");
        assert_eq!(bsp.states, serial, "{name}: bsp vs serial");
        validate_components(&g, &bsp.states).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn bfs_agrees_everywhere() {
    for (name, g) in graph_zoo() {
        if g.num_vertices() == 0 {
            continue;
        }
        let source = (g.num_vertices() / 3).min(g.num_vertices() - 1);
        let shared = graphct::bfs(&g, source);
        let bsp = bsp_alg::bfs::bsp_bfs(&g, source, None);
        let (serial_dist, _) = reference_bfs(&g, source);
        assert_eq!(shared.dist, serial_dist, "{name}: shared vs serial");
        assert_eq!(bsp.dist(), serial_dist, "{name}: bsp vs serial");
        validate_bfs(&g, source, &bsp.dist(), &bsp.parent())
            .unwrap_or_else(|e| panic!("{name} (bsp): {e}"));
        validate_bfs(&g, source, &shared.dist, &shared.parent)
            .unwrap_or_else(|e| panic!("{name} (shared): {e}"));
    }
}

#[test]
fn triangle_counts_agree_everywhere() {
    for (name, g) in graph_zoo() {
        let shared = graphct::count_triangles(&g);
        let bsp = bsp_alg::triangles::bsp_count_triangles(&g, None);
        let serial = reference_triangles(&g);
        assert_eq!(shared, serial, "{name}: shared vs serial");
        assert_eq!(bsp, serial, "{name}: bsp vs serial");
    }
}

/// Every runtime-mode configuration the engine supports.
fn mode_matrix() -> Vec<BspConfig> {
    let mut configs = Vec::new();
    for transport in [
        Transport::PerThreadOutbox,
        Transport::SingleQueue,
        Transport::Bucketed,
    ] {
        for delivery in [Delivery::Push, Delivery::Pull, Delivery::Auto] {
            for active_set in [ActiveSetStrategy::DenseScan, ActiveSetStrategy::Worklist] {
                configs.push(BspConfig {
                    transport,
                    delivery,
                    active_set,
                    ..Default::default()
                });
            }
        }
    }
    configs
}

#[test]
fn every_transport_and_strategy_combination_agrees() {
    let g = build_undirected(&rmat_edges(&RmatParams::graph500(9), 7));
    let serial = reference_components(&g);
    for transport in [Transport::PerThreadOutbox, Transport::SingleQueue] {
        for active_set in [ActiveSetStrategy::DenseScan, ActiveSetStrategy::Worklist] {
            let config = BspConfig {
                transport,
                active_set,
                ..Default::default()
            };
            let r = bsp_alg::components::bsp_connected_components_with_config(&g, config, None);
            assert_eq!(
                r.states, serial,
                "transport {transport:?}, strategy {active_set:?}"
            );
        }
    }
}

/// The full exchange-mode matrix: transport × delivery × active-set must
/// not change any algorithm's answer on random scale-free graphs.
/// CC and BFS states must be byte-identical (min folds are
/// order-independent, and pull-mode re-delivery of stale labels or
/// distances is a no-op); PageRank gets a tight tolerance instead,
/// because the f64 message-sum fold order is nondeterministic in every
/// mode (it already differs run-to-run in the seed's per-worker inboxes),
/// and sender-side combining / pull gathers reorder it further.
#[test]
fn exchange_mode_matrix_agrees_on_random_rmat_graphs() {
    for seed in [7u64, 23, 71] {
        let g = build_undirected(&rmat_edges(&RmatParams::graph500(8), seed));
        let n = g.num_vertices();
        let source = (n / 3).min(n - 1);

        let cc_ref = reference_components(&g);
        let (bfs_ref, _) = reference_bfs(&g, source);
        let pr_ref = bsp_alg::pagerank::bsp_pagerank(
            &g,
            bsp_alg::pagerank::PagerankProgram::default(),
            500,
            None,
        );

        for config in mode_matrix() {
            let tag = format!(
                "seed {seed}, {:?}/{:?}/{:?}",
                config.transport, config.delivery, config.active_set
            );

            let cc = bsp_alg::components::bsp_connected_components_with_config(&g, config, None);
            assert_eq!(cc.states, cc_ref, "CC: {tag}");

            let bfs = bsp_alg::bfs::bsp_bfs_with_config(&g, source, config, None);
            assert_eq!(bfs.dist(), bfs_ref, "BFS dist: {tag}");
            validate_bfs(&g, source, &bfs.dist(), &bfs.parent())
                .unwrap_or_else(|e| panic!("BFS parents: {tag}: {e}"));

            let pr = bsp_alg::pagerank::bsp_pagerank_with_config(
                &g,
                bsp_alg::pagerank::PagerankProgram::default(),
                500,
                config,
                None,
            );
            assert!(!pr.hit_superstep_limit, "PageRank diverged: {tag}");
            for (v, (a, b)) in pr_ref.states.iter().zip(&pr.states).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9,
                    "PageRank vertex {v}: {a} vs {b} ({tag})"
                );
            }
        }
    }
}

#[test]
fn sssp_agrees_with_dijkstra_and_bsp() {
    use xmt_bsp_repro::graph::{BuildOptions, CsrBuilder};
    for seed in 0..3u64 {
        let el = xmt_bsp_repro::graph::gen::er::gnm_weighted(300, 1500, 12, seed);
        let g = CsrBuilder::new(BuildOptions {
            symmetrize: true,
            remove_self_loops: true,
            dedup: false,
            sort: true,
        })
        .build(&el);
        let dijkstra = graphct::sssp::reference_sssp(&g, 5);
        xmt_bsp_repro::graph::validate::validate_sssp(&g, 5, &dijkstra).unwrap();
        assert_eq!(graphct::sssp(&g, 5), dijkstra, "seed {seed}: shared");
        assert_eq!(
            bsp_alg::sssp::bsp_sssp(&g, 5, None).states,
            dijkstra,
            "seed {seed}: bsp"
        );
    }
}

#[test]
fn pagerank_agrees_between_models_on_dangling_free_graphs() {
    for el in [clique(12), ring(40), grid(6, 8)] {
        let g = build_undirected(&el);
        let shared = graphct::pagerank(&g, graphct::pagerank::PagerankOptions::default());
        let bsp = bsp_alg::pagerank::bsp_pagerank(
            &g,
            bsp_alg::pagerank::PagerankProgram::default(),
            500,
            None,
        );
        for (v, (a, b)) in shared.iter().zip(&bsp.states).enumerate() {
            assert!((a - b).abs() < 1e-6, "vertex {v}: {a} vs {b}");
        }
    }
}

#[test]
fn results_are_label_equivariant() {
    // Relabeling the graph must permute the results identically —
    // guards against any vertex-id-order dependence in either model.
    use xmt_bsp_repro::graph::gen::rmat::random_permutation;
    use xmt_bsp_repro::graph::ops::relabel;
    let g = build_undirected(&gnm(200, 700, 3));
    let perm = random_permutation(200, 99);
    let h = relabel(&g, &perm);

    let tri_g = graphct::count_triangles(&g);
    let tri_h = graphct::count_triangles(&h);
    assert_eq!(tri_g, tri_h);

    // Component partition must map through the permutation.
    let lg = graphct::connected_components(&g);
    let lh = graphct::connected_components(&h);
    for u in 0..200usize {
        for v in 0..200usize {
            let same_g = lg[u] == lg[v];
            let same_h = lh[perm[u] as usize] == lh[perm[v] as usize];
            assert_eq!(same_g, same_h, "pair ({u},{v})");
        }
    }
}
