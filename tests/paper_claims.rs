//! End-to-end checks of the paper's qualitative claims on a miniature
//! version of the paper's workload (RMAT, undirected, scale-free).
//! These are the same assertions EXPERIMENTS.md reports at full harness
//! scale, pinned here at test scale so regressions are caught by
//! `cargo test`.

use xmt_bsp_repro::bsp::algorithms as bsp_alg;
use xmt_bsp_repro::bsp::runtime::BspConfig;
use xmt_bsp_repro::bsp::Transport;
use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};
use xmt_bsp_repro::graph::Csr;
use xmt_bsp_repro::graphct;
use xmt_bsp_repro::model::{predict_total_seconds, ModelParams, Recorder};

fn paper_graph(scale: u32) -> Csr {
    build_undirected(&rmat_edges(&RmatParams::graph500(scale), 1))
}

fn low_degree_source(g: &Csr) -> u64 {
    let labels = graphct::connected_components(g);
    let big = xmt_bsp_repro::graph::validate::largest_component(&labels).unwrap();
    (0..g.num_vertices())
        .filter(|&v| labels[v as usize] == big && g.degree(v) > 0)
        .min_by_key(|&v| (g.degree(v), v))
        .unwrap()
}

/// §III / Table I: BSP CC needs at least 2x the shared-memory
/// iterations, and is slower but within an order of magnitude.
#[test]
fn cc_claims_hold() {
    let g = paper_graph(12);
    let model = ModelParams::default();

    let mut bsp_rec = Recorder::new();
    let bsp = bsp_alg::components::bsp_connected_components(&g, Some(&mut bsp_rec));
    let mut ct_rec = Recorder::new();
    let labels = graphct::connected_components_instrumented(&g, &mut ct_rec);
    assert_eq!(bsp.states, labels);

    let bsp_steps = bsp.supersteps;
    let ct_iters = ct_rec.steps("iteration");
    assert!(
        bsp_steps as f64 >= 1.5 * ct_iters as f64,
        "BSP {bsp_steps} supersteps vs shared {ct_iters} iterations"
    );

    let t_bsp = predict_total_seconds(&bsp_rec, &model, 128);
    let t_ct = predict_total_seconds(&ct_rec, &model, 128);
    let ratio = t_bsp / t_ct;
    assert!(
        (1.5..20.0).contains(&ratio),
        "CC ratio {ratio} out of the paper's band (paper: 4.1)"
    );
}

/// §IV / Fig. 2: BSP BFS messages = edges incident on the frontier, far
/// exceeding the frontier after the apex; both models produce identical
/// BFS trees; BSP is slower.
#[test]
fn bfs_claims_hold() {
    let g = paper_graph(12);
    let model = ModelParams::default();
    let source = low_degree_source(&g);

    let mut bsp_rec = Recorder::new();
    let out = bsp_alg::bfs::bsp_bfs(&g, source, Some(&mut bsp_rec));
    let mut ct_rec = Recorder::new();
    let ct = graphct::bfs_instrumented(&g, source, &mut ct_rec);
    assert_eq!(out.dist(), ct.dist);

    // Messages at superstep s == degree sum of level-s frontier.
    for (s, stat) in out.result.superstep_stats.iter().enumerate() {
        let deg_sum: u64 = (0..g.num_vertices())
            .filter(|&v| ct.dist[v as usize] == s as u64)
            .map(|v| g.degree(v))
            .sum();
        assert_eq!(stat.messages_sent, deg_sum, "superstep {s}");
    }

    // Around the apex, messages exceed the next frontier by a lot.
    let apex = ct
        .frontier_sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &f)| f)
        .unwrap()
        .0;
    let msgs = out.result.superstep_stats[apex].messages_sent;
    let next_frontier = ct.frontier_sizes.get(apex + 1).copied().unwrap_or(1);
    assert!(
        msgs > 3 * next_frontier,
        "apex messages {msgs} vs next frontier {next_frontier}"
    );

    let ratio =
        predict_total_seconds(&bsp_rec, &model, 128) / predict_total_seconds(&ct_rec, &model, 128);
    assert!(
        (1.0..40.0).contains(&ratio),
        "BFS ratio {ratio} out of band (paper: 10.1)"
    );
}

/// §V / Fig. 4: candidate messages dwarf confirmed triangles; the BSP
/// write volume is a large multiple of the shared-memory one; the
/// slowdown stays within an order of magnitude anyway.
#[test]
fn tc_claims_hold() {
    let g = paper_graph(11);
    let model = ModelParams::default();

    let mut bsp_rec = Recorder::new();
    let bsp = bsp_alg::triangles::bsp_count_triangles_with_config(
        &g,
        BspConfig::default(),
        Some(&mut bsp_rec),
    );
    let bsp_count = bsp_alg::triangles::total_triangles(&bsp);
    // Paper-faithful merge baseline (the optimized DAG kernel would
    // deflate the write side of the blowup claim being reproduced).
    let mut ct_rec = Recorder::new();
    let ct_count = graphct::count_triangles_idorder(
        &g,
        graphct::IntersectStrategy::Merge,
        Some(&mut ct_rec),
        &xmt_bsp_repro::par::Executor::fixed(),
    );
    assert_eq!(bsp_count, ct_count);

    // The paper's claim is about the raw-id total order: every wedge
    // rooted at its lowest-id corner becomes a candidate message.  The
    // program now prunes by degree rank, so reconstruct the raw-id
    // volume analytically and assert the claim there, then check the
    // pruning made the wire strictly cheaper without erasing the gap.
    let id_candidates: u64 = (0..g.num_vertices())
        .map(|v| {
            let nbrs = g.neighbors(v);
            let below = nbrs.partition_point(|&m| m < v) as u64;
            let above = nbrs.len() as u64 - below;
            below * above
        })
        .sum();
    assert!(
        id_candidates > 5 * ct_count.max(1),
        "raw-id candidates {id_candidates} vs triangles {ct_count}"
    );
    let candidates = bsp.superstep_stats[1].messages_sent;
    assert!(
        candidates < id_candidates,
        "degree-rank pruning must beat raw-id order ({candidates} vs {id_candidates})"
    );
    assert!(
        candidates > 2 * ct_count.max(1),
        "even pruned, candidates dwarf triangles ({candidates} vs {ct_count})"
    );

    let bsp_writes: u64 = bsp_rec.records.iter().map(|r| r.counts.writes).sum();
    let ct_writes: u64 = ct_rec.records.iter().map(|r| r.counts.writes).sum();
    assert!(
        bsp_writes > 10 * ct_writes,
        "write blowup {bsp_writes}/{ct_writes} (paper: 181x)"
    );

    let ratio =
        predict_total_seconds(&bsp_rec, &model, 128) / predict_total_seconds(&ct_rec, &model, 128);
    assert!(
        (2.0..30.0).contains(&ratio),
        "TC ratio {ratio} out of band (paper: 9.4)"
    );
}

/// §VII: the single-fetch-and-add message queue inhibits scalability —
/// with it, 8→128 processors buys almost nothing; with per-worker
/// outboxes the same program keeps scaling.
#[test]
fn single_queue_inhibits_scalability() {
    let g = paper_graph(12);
    let model = ModelParams::default();

    let speedup = |transport: Transport| {
        let mut rec = Recorder::new();
        let cfg = BspConfig {
            transport,
            ..Default::default()
        };
        let r = bsp_alg::components::bsp_connected_components_with_config(&g, cfg, Some(&mut rec));
        assert!(!r.hit_superstep_limit);
        predict_total_seconds(&rec, &model, 8) / predict_total_seconds(&rec, &model, 128)
    };

    let outbox = speedup(Transport::PerThreadOutbox);
    let queue = speedup(Transport::SingleQueue);
    assert!(
        outbox > 2.0 * queue,
        "outbox speedup {outbox} vs single-queue {queue}"
    );
    assert!(queue < 2.0, "single queue should be nearly flat: {queue}");
}

/// Figure 1's per-iteration profile: the shared-memory algorithm does
/// near-constant work per iteration, while BSP supersteps shrink as the
/// active set collapses.
#[test]
fn fig1_profiles_hold() {
    let g = paper_graph(12);
    let mut bsp_rec = Recorder::new();
    let bsp = bsp_alg::components::bsp_connected_components(&g, Some(&mut bsp_rec));
    let mut ct_rec = Recorder::new();
    graphct::connected_components_instrumented(&g, &mut ct_rec);

    // GraphCT: every iteration reads all edges — flat profile.
    let ct_reads: Vec<u64> = ct_rec
        .with_label("iteration")
        .map(|r| r.counts.reads)
        .collect();
    let lo = *ct_reads.iter().min().unwrap() as f64;
    let hi = *ct_reads.iter().max().unwrap() as f64;
    assert!(
        hi / lo < 3.0,
        "shared-memory profile not flat: {ct_reads:?}"
    );

    // BSP: message volume collapses from the first to the last superstep.
    let first = bsp.superstep_stats.first().unwrap().messages_sent;
    let last_active = bsp.superstep_stats[bsp.superstep_stats.len() - 2].messages_sent;
    assert!(last_active * 4 < first, "{first} -> {last_active}");
}
