//! End-to-end tests for the graph-analytics service: a real TCP server
//! on loopback, driven through the newline-delimited JSON protocol, with
//! every result checked against a direct `run_bsp` on the same graph.

use std::thread;

use serde::Content;
use xmt_bsp::algorithms::bfs::BfsProgram;
use xmt_bsp::algorithms::components::CcProgram;
use xmt_bsp::algorithms::pagerank::PagerankProgram;
use xmt_bsp::{run_bsp, ActiveSetStrategy, BspConfig};
use xmt_graph::builder::build_undirected;
use xmt_graph::gen::er;
use xmt_graph::gen::rmat::{rmat_edges, RmatParams};
use xmt_graph::Csr;
use xmt_service::client::{field, field_bool, field_str, field_u64};
use xmt_service::{Client, Server, ServiceConfig};

const RMAT_SCALE: u32 = 8;
const RMAT_SEED: u64 = 3;
const GNM_N: u64 = 600;
const GNM_M: u64 = 2_000;
const GNM_SEED: u64 = 5;

fn start_server(config: ServiceConfig) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().to_string();
    (addr, server.spawn())
}

fn rmat_graph() -> Csr {
    let params = RmatParams {
        edge_factor: 8,
        ..RmatParams::graph500(RMAT_SCALE)
    };
    build_undirected(&rmat_edges(&params, RMAT_SEED))
}

fn gnm_graph() -> Csr {
    build_undirected(&er::gnm(GNM_N, GNM_M, GNM_SEED))
}

fn register_both(client: &mut Client) {
    let r = client
        .request_line(&format!(
            r#"{{"op":"register_graph","name":"rmat","kind":"rmat","scale":{RMAT_SCALE},"edge_factor":8,"seed":{RMAT_SEED}}}"#
        ))
        .expect("register rmat");
    assert_eq!(field_str(&r, "status"), Some("ok"), "{r:?}");
    let r = client
        .request_line(&format!(
            r#"{{"op":"register_graph","name":"gnm","kind":"gnm","n":{GNM_N},"m":{GNM_M},"seed":{GNM_SEED}}}"#
        ))
        .expect("register gnm");
    assert_eq!(field_str(&r, "status"), Some("ok"), "{r:?}");
}

/// Submit a job and wait for its result tree.
fn run_job(client: &mut Client, job_json: &str) -> Content {
    let r = client.request_line(job_json).expect("submit");
    assert_eq!(field_str(&r, "status"), Some("ok"), "{r:?}");
    let id = field_u64(&r, "job_id").expect("job id");
    let r = client
        .request_line(&format!(
            r#"{{"op":"result","job_id":{id},"wait_ms":120000}}"#
        ))
        .expect("result");
    assert_eq!(field_str(&r, "status"), Some("ok"), "{r:?}");
    r
}

fn labels_of(response: &Content) -> Vec<u64> {
    let result = field(response, "result").expect("result field");
    seq_u64(field(result, "labels").expect("labels"))
}

fn seq_u64(c: &Content) -> Vec<u64> {
    match c {
        Content::Seq(items) => items
            .iter()
            .map(|i| match i {
                Content::U64(v) => *v,
                Content::I64(v) => *v as u64,
                other => panic!("non-integer element {other:?}"),
            })
            .collect(),
        other => panic!("expected seq, found {other:?}"),
    }
}

fn seq_f64(c: &Content) -> Vec<f64> {
    match c {
        Content::Seq(items) => items
            .iter()
            .map(|i| match i {
                Content::F64(v) => *v,
                Content::U64(v) => *v as f64,
                Content::I64(v) => *v as f64,
                other => panic!("non-float element {other:?}"),
            })
            .collect(),
        other => panic!("expected seq, found {other:?}"),
    }
}

#[test]
fn serves_all_three_kernels_matching_direct_runs() {
    let (addr, server) = start_server(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        memory_budget_bytes: 0,
    });
    let mut client = Client::connect(&addr).expect("connect");
    register_both(&mut client);

    let rmat = rmat_graph();
    let config = BspConfig::default();

    // CC on the RMAT graph.
    let r = run_job(
        &mut client,
        r#"{"op":"submit","algorithm":"cc","graph":"rmat"}"#,
    );
    let direct = run_bsp(&rmat, &CcProgram, config, None);
    assert_eq!(labels_of(&r), direct.states);

    // BFS from vertex 1.
    let r = run_job(
        &mut client,
        r#"{"op":"submit","algorithm":"bfs","graph":"rmat","source":1}"#,
    );
    let direct = run_bsp(&rmat, &BfsProgram { source: 1 }, config, None);
    let result = field(&r, "result").expect("result");
    let dist = seq_u64(field(result, "dist").expect("dist"));
    let parent = seq_u64(field(result, "parent").expect("parent"));
    assert_eq!(
        dist,
        direct.states.iter().map(|s| s.dist).collect::<Vec<_>>()
    );
    assert_eq!(
        parent,
        direct.states.iter().map(|s| s.parent).collect::<Vec<_>>()
    );

    // PageRank: f64s round-trip JSON exactly (`{:?}` formatting), so the
    // wire result must be bit-identical to the direct run.
    let r = run_job(
        &mut client,
        r#"{"op":"submit","algorithm":"pagerank","graph":"rmat"}"#,
    );
    let direct = run_bsp(
        &rmat,
        &PagerankProgram {
            damping: 0.85,
            tolerance: 1e-7,
        },
        config,
        None,
    );
    let result = field(&r, "result").expect("result");
    assert_eq!(
        seq_f64(field(result, "ranks").expect("ranks")),
        direct.states
    );

    let r = client
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown");
    assert_eq!(field_str(&r, "status"), Some("ok"));
    drop(client);
    server.join().expect("server thread");
}

#[test]
fn serves_concurrent_jobs_on_two_graphs() {
    let (addr, server) = start_server(ServiceConfig {
        workers: 4,
        queue_capacity: 32,
        memory_budget_bytes: 0,
    });
    let mut client = Client::connect(&addr).expect("connect");
    register_both(&mut client);

    let config = BspConfig::default();
    let cc_rmat = run_bsp(&rmat_graph(), &CcProgram, config, None).states;
    let cc_gnm = run_bsp(&gnm_graph(), &CcProgram, config, None).states;

    // 12 jobs across both graphs from 4 client threads at once.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let addr = addr.clone();
            let cc_rmat = cc_rmat.clone();
            let cc_gnm = cc_gnm.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for i in 0..3 {
                    let (graph, expect) = if (t + i) % 2 == 0 {
                        ("rmat", &cc_rmat)
                    } else {
                        ("gnm", &cc_gnm)
                    };
                    let r = run_job(
                        &mut client,
                        &format!(r#"{{"op":"submit","algorithm":"cc","graph":"{graph}"}}"#),
                    );
                    assert_eq!(&labels_of(&r), expect, "thread {t} job {i}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // The stats endpoint saw all of it.
    let r = client.request_line(r#"{"op":"stats"}"#).expect("stats");
    let stats = field(&r, "stats").expect("stats tree");
    assert!(field_u64(stats, "submitted").expect("submitted") >= 12);
    assert_eq!(field_u64(stats, "workers"), Some(4));

    let _ = client.request_line(r#"{"op":"shutdown"}"#);
    drop(client);
    server.join().expect("server thread");
}

#[test]
fn rejects_jobs_when_the_queue_is_full() {
    let (addr, server) = start_server(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        memory_budget_bytes: 0,
    });
    let mut client = Client::connect(&addr).expect("connect");
    let r = client
        .request_line(r#"{"op":"register_graph","name":"long","kind":"path","n":16000}"#)
        .expect("register");
    assert_eq!(field_str(&r, "status"), Some("ok"));

    // Long jobs: worklist active set, uncapped supersteps.
    let cfg = serde_json::to_string(&BspConfig {
        active_set: ActiveSetStrategy::Worklist,
        max_supersteps: 1_000_000,
        ..BspConfig::default()
    })
    .expect("serialize config");
    let submit = format!(r#"{{"op":"submit","algorithm":"cc","graph":"long","config":{cfg}}}"#);

    let mut rejected = 0;
    let mut admitted = Vec::new();
    for _ in 0..12 {
        let r = client.request_line(&submit).expect("submit");
        match field_str(&r, "status") {
            Some("ok") => admitted.push(field_u64(&r, "job_id").expect("id")),
            Some("error") => {
                assert_eq!(field_str(&r, "code"), Some("queue_full"), "{r:?}");
                rejected += 1;
            }
            other => panic!("bad status {other:?}"),
        }
    }
    assert!(rejected > 0, "queue never filled");
    assert!(admitted.len() >= 2);
    for id in admitted {
        let _ = client.request_line(&format!(r#"{{"op":"cancel","job_id":{id}}}"#));
    }
    let _ = client.request_line(r#"{"op":"shutdown"}"#);
    drop(client);
    server.join().expect("server thread");
}

#[test]
fn expired_result_wait_is_flagged_not_errored() {
    let (addr, server) = start_server(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        memory_budget_bytes: 0,
    });
    let mut client = Client::connect(&addr).expect("connect");
    let r = client
        .request_line(r#"{"op":"register_graph","name":"long","kind":"path","n":16000}"#)
        .expect("register");
    assert_eq!(field_str(&r, "status"), Some("ok"));

    let cfg = serde_json::to_string(&BspConfig {
        active_set: ActiveSetStrategy::Worklist,
        max_supersteps: 1_000_000,
        ..BspConfig::default()
    })
    .expect("serialize config");
    let r = client
        .request_line(&format!(
            r#"{{"op":"submit","algorithm":"cc","graph":"long","config":{cfg}}}"#
        ))
        .expect("submit");
    let id = field_u64(&r, "job_id").expect("id");

    // A wait far shorter than the run: the response must be an *ok*
    // with `timed_out: true` and a live job snapshot — the wait
    // expiring is not a job failure and must not read as one.
    let r = client
        .request_line(&format!(r#"{{"op":"result","job_id":{id},"wait_ms":30}}"#))
        .expect("result");
    assert_eq!(field_str(&r, "status"), Some("ok"), "{r:?}");
    assert_eq!(field_bool(&r, "timed_out"), Some(true), "{r:?}");
    let job = field(&r, "job").expect("job snapshot rides along");
    let state = field_str(job, "state").expect("state");
    assert!(state == "queued" || state == "running", "{state}");

    // A completed job's result carries the flag as false.
    let _ = client.request_line(&format!(r#"{{"op":"cancel","job_id":{id}}}"#));
    let r = client
        .request_line(r#"{"op":"register_graph","name":"small","kind":"path","n":64}"#)
        .expect("register small");
    assert_eq!(field_str(&r, "status"), Some("ok"));
    let r = client
        .request_line(r#"{"op":"submit","algorithm":"cc","graph":"small"}"#)
        .expect("submit small");
    let small_id = field_u64(&r, "job_id").expect("id");
    let r = client
        .request_line(&format!(
            r#"{{"op":"result","job_id":{small_id},"wait_ms":120000}}"#
        ))
        .expect("result");
    assert_eq!(field_str(&r, "status"), Some("ok"), "{r:?}");
    assert_eq!(field_bool(&r, "timed_out"), Some(false), "{r:?}");

    let _ = client.request_line(r#"{"op":"shutdown"}"#);
    drop(client);
    server.join().expect("server thread");
}

#[test]
fn trace_op_returns_per_superstep_records() {
    let (addr, server) = start_server(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        memory_budget_bytes: 0,
    });
    let mut client = Client::connect(&addr).expect("connect");
    register_both(&mut client);

    let r = client
        .request_line(r#"{"op":"submit","algorithm":"cc","graph":"rmat"}"#)
        .expect("submit");
    let id = field_u64(&r, "job_id").expect("id");
    let r = client
        .request_line(&format!(
            r#"{{"op":"result","job_id":{id},"wait_ms":120000}}"#
        ))
        .expect("result");
    let supersteps = field_u64(&r, "supersteps").expect("supersteps");

    let r = client
        .request_line(&format!(r#"{{"op":"trace","job_id":{id}}}"#))
        .expect("trace");
    assert_eq!(field_str(&r, "status"), Some("ok"), "{r:?}");
    let trace = field(&r, "trace").expect("trace tree");
    assert_eq!(field_str(trace, "label"), Some("cc/bsp"));
    let Some(Content::Seq(records)) = field(trace, "supersteps") else {
        panic!("trace.supersteps missing");
    };
    // The root test build enables the service's default `trace`
    // feature, so the series is the full per-superstep profile.
    assert_eq!(records.len() as u64, supersteps, "{r:?}");
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(field_u64(rec, "superstep"), Some(i as u64));
        assert!(field_u64(rec, "total_ns").expect("total_ns") > 0);
        assert!(field_u64(rec, "active").expect("active") > 0);
    }
    // First superstep: every vertex is active and casts no halt vote
    // until it converges; the series must show the active set shrink.
    let first_active = field_u64(&records[0], "active").unwrap();
    let last_active = field_u64(records.last().unwrap(), "active").unwrap();
    assert!(first_active >= last_active);

    // Tracing a job that is not terminal is a wrong_state error.
    let cfg = serde_json::to_string(&BspConfig {
        active_set: ActiveSetStrategy::Worklist,
        max_supersteps: 1_000_000,
        ..BspConfig::default()
    })
    .expect("serialize config");
    let r = client
        .request_line(r#"{"op":"register_graph","name":"long","kind":"path","n":16000}"#)
        .expect("register");
    assert_eq!(field_str(&r, "status"), Some("ok"));
    let r = client
        .request_line(&format!(
            r#"{{"op":"submit","algorithm":"cc","graph":"long","config":{cfg}}}"#
        ))
        .expect("submit long");
    let live = field_u64(&r, "job_id").expect("id");
    let r = client
        .request_line(&format!(r#"{{"op":"trace","job_id":{live}}}"#))
        .expect("trace live");
    assert_eq!(field_str(&r, "code"), Some("wrong_state"), "{r:?}");
    let _ = client.request_line(&format!(r#"{{"op":"cancel","job_id":{live}}}"#));

    let _ = client.request_line(r#"{"op":"shutdown"}"#);
    drop(client);
    server.join().expect("server thread");
}

#[test]
fn timed_out_job_resumes_to_completion_over_the_wire() {
    let (addr, server) = start_server(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        memory_budget_bytes: 0,
    });
    let mut client = Client::connect(&addr).expect("connect");
    let r = client
        .request_line(r#"{"op":"register_graph","name":"long","kind":"path","n":16000}"#)
        .expect("register");
    assert_eq!(field_str(&r, "status"), Some("ok"));

    let cfg = serde_json::to_string(&BspConfig {
        active_set: ActiveSetStrategy::Worklist,
        max_supersteps: 1_000_000,
        ..BspConfig::default()
    })
    .expect("serialize config");

    // Submit with a deadline far shorter than the ~16k-superstep run.
    let r = client
        .request_line(&format!(
            r#"{{"op":"submit","algorithm":"cc","graph":"long","config":{cfg},"deadline_ms":10}}"#
        ))
        .expect("submit");
    let id = field_u64(&r, "job_id").expect("id");

    // `result` waits, then reports the timeout as a wrong_state error.
    let r = client
        .request_line(&format!(
            r#"{{"op":"result","job_id":{id},"wait_ms":120000}}"#
        ))
        .expect("result");
    assert_eq!(field_str(&r, "status"), Some("error"));
    assert_eq!(field_str(&r, "code"), Some("wrong_state"), "{r:?}");

    let r = client
        .request_line(&format!(r#"{{"op":"status","job_id":{id}}}"#))
        .expect("status");
    let job = field(&r, "job").expect("job");
    assert_eq!(field_str(job, "state"), Some("timed_out"), "{r:?}");
    assert_eq!(field(job, "has_checkpoint"), Some(&Content::Bool(true)));
    let cut_at = field_u64(job, "supersteps").expect("supersteps");
    assert!(cut_at >= 1);

    // Resume (no deadline this time) and run to completion.
    let r = client
        .request_line(&format!(r#"{{"op":"resume","job_id":{id}}}"#))
        .expect("resume");
    assert_eq!(field_str(&r, "status"), Some("ok"), "{r:?}");
    assert_eq!(field_u64(&r, "from_superstep"), Some(cut_at));
    let resumed = field_u64(&r, "job_id").expect("resumed id");

    let r = client
        .request_line(&format!(
            r#"{{"op":"result","job_id":{resumed},"wait_ms":120000}}"#
        ))
        .expect("resumed result");
    assert_eq!(field_str(&r, "status"), Some("ok"), "{r:?}");
    let labels = labels_of(&r);
    assert_eq!(labels.len(), 16_000);
    assert!(labels.iter().all(|&l| l == 0), "path is one component");

    // The checkpoint moved with the resume: a second resume is refused.
    let r = client
        .request_line(&format!(r#"{{"op":"resume","job_id":{id}}}"#))
        .expect("second resume");
    assert_eq!(field_str(&r, "code"), Some("no_checkpoint"), "{r:?}");

    let _ = client.request_line(r#"{"op":"shutdown"}"#);
    drop(client);
    server.join().expect("server thread");
}
