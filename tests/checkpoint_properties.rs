//! Property tests for superstep checkpointing: sliced runs must compose
//! to the uninterrupted result for any graph and any slice boundary, and
//! panics inside vertex programs must not poison the runtime.

use proptest::prelude::*;

use xmt_bsp_repro::bsp::algorithms::components::CcProgram;
use xmt_bsp_repro::bsp::algorithms::sssp::SsspProgram;
use xmt_bsp_repro::bsp::runtime::{resume_bsp, run_bsp, run_bsp_slice, BspConfig};
use xmt_bsp_repro::bsp::{Context, VertexProgram};
use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::{BuildOptions, CsrBuilder, EdgeList};

fn arb_graph(max_n: u64, max_m: usize) -> impl Strategy<Value = EdgeList> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 1..max_m).prop_map(move |edges| EdgeList {
            num_vertices: n,
            edges,
            weights: None,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cc_slices_compose_for_any_boundary(el in arb_graph(40, 120), cut in 1u64..8) {
        let g = build_undirected(&el);
        let whole = run_bsp(&g, &CcProgram, BspConfig::default(), None);

        let first = run_bsp_slice(
            &g,
            &CcProgram,
            BspConfig { max_supersteps: cut, ..Default::default() },
            None,
            None,
        );
        let final_states = match first.resume {
            None => first.result.states, // finished before the cut
            Some(ckpt) => {
                let second = resume_bsp(
                    &g,
                    &CcProgram,
                    BspConfig::default(),
                    None,
                    first.result.states,
                    ckpt,
                )
                .expect("valid checkpoint");
                prop_assert!(second.resume.is_none());
                prop_assert_eq!(second.result.supersteps, whole.supersteps);
                second.result.states
            }
        };
        prop_assert_eq!(final_states, whole.states);
    }

    #[test]
    fn sssp_slices_compose(el in arb_graph(30, 90), cut in 1u64..6) {
        // Give the random graph unit weights via the weighted builder.
        let mut wel = EdgeList::new(el.num_vertices);
        for (i, &(u, v)) in el.edges.iter().enumerate() {
            wel.push_weighted(u, v, 1 + (i as i64 % 5));
        }
        let g = CsrBuilder::new(BuildOptions {
            symmetrize: true,
            remove_self_loops: true,
            dedup: false,
            sort: true,
        })
        .build(&wel);
        let prog = SsspProgram { source: 0 };
        let whole = run_bsp(&g, &prog, BspConfig::default(), None);

        let first = run_bsp_slice(
            &g,
            &prog,
            BspConfig { max_supersteps: cut, ..Default::default() },
            None,
            None,
        );
        let final_states = match first.resume {
            None => first.result.states,
            Some(ckpt) => {
                resume_bsp(&g, &prog, BspConfig::default(), None, first.result.states, ckpt)
                    .expect("valid checkpoint")
                    .result
                    .states
            }
        };
        prop_assert_eq!(final_states, whole.states);
    }
}

/// A vertex program that panics at a chosen vertex must surface the
/// panic to the caller without wedging the worker pool.
#[test]
fn panicking_program_propagates_and_pool_survives() {
    struct Bomb;
    impl VertexProgram for Bomb {
        type State = ();
        type Message = u64;
        fn init(&self, _v: u64) {}
        fn compute(&self, ctx: &mut Context<'_, u64>, _s: &mut (), _m: &[u64]) {
            if ctx.vertex() == 3 {
                panic!("boom at vertex 3");
            }
            ctx.vote_to_halt();
        }
    }
    let g = build_undirected(&xmt_bsp_repro::graph::gen::structured::path(8));
    let res = std::panic::catch_unwind(|| run_bsp(&g, &Bomb, BspConfig::default(), None));
    assert!(res.is_err(), "panic must propagate");

    // The global pool must still work afterwards.
    let labels = xmt_bsp_repro::graphct::connected_components(&g);
    assert!(labels.iter().all(|&l| l == 0));
}
