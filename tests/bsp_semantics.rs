//! Pregel semantics of the BSP runtime, tested through custom vertex
//! programs: superstep-boundary message delivery, halt/reactivation,
//! aggregator visibility, state persistence and termination.

use std::sync::atomic::{AtomicU64, Ordering};

use xmt_bsp_repro::bsp::runtime::{run_bsp, BspConfig};
use xmt_bsp_repro::bsp::{Context, VertexProgram};
use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::gen::structured::{clique, path, ring, star};
use xmt_bsp_repro::graph::Csr;

fn g_path(n: u64) -> Csr {
    build_undirected(&path(n))
}

/// Messages sent in superstep s are visible in s+1 and ONLY s+1.
#[test]
fn messages_cross_exactly_one_superstep_boundary() {
    struct Echo;
    impl VertexProgram for Echo {
        type State = Vec<(u64, u64)>; // (superstep, payload) as received
        type Message = u64;
        fn init(&self, _v: u64) -> Self::State {
            Vec::new()
        }
        fn compute(&self, ctx: &mut Context<'_, u64>, log: &mut Self::State, msgs: &[u64]) {
            for &m in msgs {
                log.push((ctx.superstep(), m));
            }
            // Vertex 0 sends its superstep number to vertex 1 during
            // supersteps 0..3 (staying active itself; a halted vertex
            // with no messages would never compute again).
            if ctx.vertex() == 0 && ctx.superstep() < 3 {
                ctx.send_to(1, ctx.superstep() * 10);
                ctx.stay_active();
            } else {
                ctx.vote_to_halt();
            }
        }
    }
    let g = g_path(3);
    let r = run_bsp(&g, &Echo, BspConfig::default(), None);
    // Vertex 1 must have received payload s*10 exactly at superstep s+1.
    assert_eq!(r.states[1], vec![(1, 0), (2, 10), (3, 20)]);
    assert!(r.states[2].is_empty());
}

/// A halted vertex is not recomputed until a message reactivates it.
#[test]
fn halted_vertices_sleep_until_messaged() {
    static COMPUTES: AtomicU64 = AtomicU64::new(0);
    struct Sleeper;
    impl VertexProgram for Sleeper {
        type State = u64; // number of times compute ran
        type Message = u64;
        fn init(&self, _v: u64) -> u64 {
            0
        }
        fn compute(&self, ctx: &mut Context<'_, u64>, runs: &mut u64, _msgs: &[u64]) {
            *runs += 1;
            COMPUTES.fetch_add(1, Ordering::Relaxed);
            // Vertex 0 pings vertex 2 (not a neighbor!) at superstep 2.
            if ctx.vertex() == 0 {
                if ctx.superstep() < 2 {
                    ctx.stay_active(); // stay awake without messaging
                } else if ctx.superstep() == 2 {
                    ctx.send_to(2, 99);
                }
            }
            if ctx.vertex() != 0 || ctx.superstep() >= 2 {
                ctx.vote_to_halt();
            }
        }
    }
    let g = g_path(4);
    let r = run_bsp(&g, &Sleeper, BspConfig::default(), None);
    // Vertex 0 ran supersteps 0,1,2. Vertices 1,3 ran only superstep 0.
    // Vertex 2 ran superstep 0 and was reactivated at superstep 3.
    assert_eq!(r.states[0], 3);
    assert_eq!(r.states[1], 1);
    assert_eq!(r.states[2], 2);
    assert_eq!(r.states[3], 1);
}

/// `send_to` reaches arbitrary vertices, not just neighbors (Pregel:
/// "a message may be sent to any vertex whose identifier is known").
#[test]
fn send_to_arbitrary_vertex_works() {
    struct LongJump;
    impl VertexProgram for LongJump {
        type State = u64;
        type Message = u64;
        fn init(&self, _v: u64) -> u64 {
            0
        }
        fn compute(&self, ctx: &mut Context<'_, u64>, got: &mut u64, msgs: &[u64]) {
            for &m in msgs {
                *got += m;
            }
            if ctx.superstep() == 0 {
                // Everyone messages the last vertex directly.
                let target = ctx.num_vertices() - 1;
                let me = ctx.vertex();
                if me != target {
                    ctx.send_to(target, me);
                }
            }
            ctx.vote_to_halt();
        }
    }
    let g = build_undirected(&ring(10));
    let r = run_bsp(&g, &LongJump, BspConfig::default(), None);
    assert_eq!(r.states[9], (0..9u64).sum::<u64>());
}

/// Aggregates computed in superstep s are visible in superstep s+1.
#[test]
fn aggregator_visibility_is_one_superstep_delayed() {
    struct AggWatcher;
    impl VertexProgram for AggWatcher {
        type State = Vec<u64>; // prev_aggregate_u64 per superstep
        type Message = u64;
        fn init(&self, _v: u64) -> Self::State {
            Vec::new()
        }
        fn compute(&self, ctx: &mut Context<'_, u64>, seen: &mut Self::State, _msgs: &[u64]) {
            seen.push(ctx.prev_aggregate_u64());
            ctx.aggregate_u64(ctx.superstep() + 1);
            if ctx.superstep() < 2 {
                let v = ctx.vertex();
                ctx.send_to(v, 0); // self-message to stay alive
            }
            ctx.vote_to_halt();
        }
    }
    let g = g_path(4); // 4 vertices
    let r = run_bsp(&g, &AggWatcher, BspConfig::default(), None);
    // Superstep 0: prev agg 0. Superstep 1: 4 vertices aggregated 1 -> 4.
    // Superstep 2: 4 vertices aggregated 2 -> 8.
    for v in 0..4 {
        assert_eq!(r.states[v], vec![0, 4, 8], "vertex {v}");
    }
    assert_eq!(r.aggregates, vec![(4, 0.0), (8, 0.0), (12, 0.0)]);
}

/// State persists across supersteps even while the vertex is halted.
#[test]
fn state_persists_across_halted_supersteps() {
    struct Stamp;
    impl VertexProgram for Stamp {
        type State = u64;
        type Message = u64;
        fn init(&self, v: u64) -> u64 {
            v * 1000
        }
        fn compute(&self, ctx: &mut Context<'_, u64>, state: &mut u64, _msgs: &[u64]) {
            // Vertex 0 keeps itself alive via self-messages for a few
            // supersteps; everyone else sleeps after superstep 0.
            if ctx.vertex() == 0 && ctx.superstep() < 3 {
                ctx.send_to(0, 1);
            }
            *state += 1;
            ctx.vote_to_halt();
        }
    }
    let g = g_path(3);
    let r = run_bsp(&g, &Stamp, BspConfig::default(), None);
    // Vertices 1 and 2 computed only in superstep 0; their init-derived
    // states survived the supersteps they slept through.
    assert_eq!(r.states[1], 1001);
    assert_eq!(r.states[2], 2001);
    // Vertex 0 computed in supersteps 0..=3 (self-message chain).
    assert_eq!(r.states[0], 4);
}

/// Termination requires BOTH all-halted and no messages in flight.
#[test]
fn termination_needs_quiescence() {
    struct CountDown;
    impl VertexProgram for CountDown {
        type State = u64;
        type Message = u64;
        fn init(&self, _v: u64) -> u64 {
            0
        }
        fn compute(&self, ctx: &mut Context<'_, u64>, state: &mut u64, msgs: &[u64]) {
            let budget = msgs.first().copied().unwrap_or(5);
            *state = budget;
            if budget > 0 {
                let v = ctx.vertex();
                ctx.send_to(v, budget - 1);
            }
            ctx.vote_to_halt();
        }
    }
    let g = g_path(2);
    let r = run_bsp(&g, &CountDown, BspConfig::default(), None);
    // Budgets 5,4,3,2,1,0: six computing supersteps.
    assert_eq!(r.supersteps, 6);
    assert!(r.states.iter().all(|&s| s == 0));
    assert_eq!(r.superstep_stats.last().unwrap().messages_sent, 0);
}

/// Empty graphs and single vertices run without panicking.
#[test]
fn degenerate_graphs_are_fine() {
    struct Noop;
    impl VertexProgram for Noop {
        type State = ();
        type Message = u64;
        fn init(&self, _v: u64) {}
        fn compute(&self, ctx: &mut Context<'_, u64>, _s: &mut (), _m: &[u64]) {
            ctx.vote_to_halt();
        }
    }
    let empty = build_undirected(&xmt_bsp_repro::graph::EdgeList::new(0));
    let r = run_bsp(&empty, &Noop, BspConfig::default(), None);
    assert_eq!(r.supersteps, 0);
    assert!(r.states.is_empty());

    let single = build_undirected(&xmt_bsp_repro::graph::EdgeList::new(1));
    let r = run_bsp(&single, &Noop, BspConfig::default(), None);
    assert_eq!(r.supersteps, 1);
}

/// Messages to every vertex in a dense burst are all delivered
/// (stress on the exchange path with a clique).
#[test]
fn dense_burst_delivers_every_message() {
    struct Blast;
    impl VertexProgram for Blast {
        type State = u64;
        type Message = u64;
        fn init(&self, _v: u64) -> u64 {
            0
        }
        fn compute(&self, ctx: &mut Context<'_, u64>, got: &mut u64, msgs: &[u64]) {
            *got += msgs.iter().sum::<u64>();
            if ctx.superstep() == 0 {
                ctx.send_to_neighbors(1);
            }
            ctx.vote_to_halt();
        }
    }
    let n = 40u64;
    let g = build_undirected(&clique(n));
    let r = run_bsp(&g, &Blast, BspConfig::default(), None);
    // Every vertex hears from its n-1 neighbors.
    assert!(r.states.iter().all(|&s| s == n - 1));
    assert_eq!(r.superstep_stats[0].messages_sent, n * (n - 1));
}

/// The star graph exercises the hub-receiver path: one vertex receives
/// from every leaf in one superstep.
#[test]
fn hub_receives_all_leaf_messages() {
    struct LeafToHub;
    impl VertexProgram for LeafToHub {
        type State = u64;
        type Message = u64;
        fn init(&self, _v: u64) -> u64 {
            0
        }
        fn compute(&self, ctx: &mut Context<'_, u64>, got: &mut u64, msgs: &[u64]) {
            *got += msgs.len() as u64;
            if ctx.superstep() == 0 && ctx.vertex() != 0 {
                ctx.send_to(0, ctx.vertex());
            }
            ctx.vote_to_halt();
        }
    }
    let g = build_undirected(&star(512));
    let r = run_bsp(&g, &LeafToHub, BspConfig::default(), None);
    assert_eq!(r.states[0], 511);
}
