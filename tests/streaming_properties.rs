//! Property tests for the STINGER-lite streaming structures: after any
//! sequence of insertions and deletions, the incremental state must
//! equal a from-scratch computation by the static toolkit.

use proptest::prelude::*;

use xmt_bsp_repro::graphct;
use xmt_bsp_repro::stinger::{
    DynGraph, EdgeOp, StreamingAnalytics, StreamingClustering, StreamingComponents,
};

/// An operation stream: insert (true) or delete (false) the i-th
/// candidate edge of a fixed pseudo-random pool.
fn arb_ops(n: u64, len: usize) -> impl Strategy<Value = Vec<(bool, u64, u64)>> {
    proptest::collection::vec((any::<bool>(), 0..n, 0..n), 1..len)
}

/// A stream of batches, each a mix of inserts and deletes.
fn arb_batches(n: u64, batches: usize, ops: usize) -> impl Strategy<Value = Vec<Vec<EdgeOp>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (any::<bool>(), 0..n, 0..n).prop_map(|(ins, u, v)| {
                if ins {
                    EdgeOp::Insert(u, v)
                } else {
                    EdgeOp::Delete(u, v)
                }
            }),
            1..ops,
        ),
        1..batches,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_triangles_match_static_after_any_churn(ops in arb_ops(24, 300)) {
        let mut s = StreamingClustering::new(24);
        for (insert, u, v) in ops {
            if insert {
                s.insert_edge(u, v);
            } else {
                s.remove_edge(u, v);
            }
        }
        prop_assert!(s.graph().check_consistency());
        let csr = s.graph().to_csr();
        prop_assert_eq!(s.triangles(), graphct::count_triangles(&csr));
        let (cc, _) = graphct::clustering_coefficients(&csr);
        for v in 0..24u64 {
            prop_assert!((s.coefficient(v) - cc[v as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_components_match_static_after_any_churn(ops in arb_ops(24, 300)) {
        let mut s = StreamingComponents::new(24);
        for (insert, u, v) in ops {
            if insert {
                s.insert_edge(u, v);
            } else {
                s.remove_edge(u, v);
            }
        }
        let csr = s.graph().to_csr();
        let expected = xmt_bsp_repro::graph::validate::reference_components(&csr);
        prop_assert_eq!(s.labels(), expected);
    }

    #[test]
    fn dyngraph_batch_equals_serial(edges in proptest::collection::vec((0u64..32, 0u64..32), 0..200)) {
        let mut serial = DynGraph::new(32);
        for &(u, v) in &edges {
            serial.insert_edge(u, v);
        }
        let mut batched = DynGraph::new(32);
        batched.insert_batch(&edges);
        prop_assert_eq!(&batched, &serial);
        prop_assert!(batched.check_consistency());
    }

    /// The streaming subsystem's equivalence gate: after EVERY applied
    /// batch, the incrementally maintained CC labels and triangle count
    /// must equal a full recompute on the materialized CSR — and the
    /// dry-run `plan_batch` must predict exactly what `apply_batch`
    /// does, since the service admits batches against its budget on the
    /// strength of that prediction.
    #[test]
    fn analytics_batches_match_full_recompute_after_every_batch(
        batches in arb_batches(20, 24, 40),
    ) {
        let mut s = StreamingAnalytics::new(20);
        for batch in &batches {
            let planned = s.plan_batch(batch).expect("in-range ops");
            let applied = s.apply_batch(batch).expect("in-range ops");
            prop_assert_eq!(planned, applied, "plan/apply divergence");
            prop_assert!(s.graph().check_consistency());

            let csr = s.graph().to_csr();
            prop_assert_eq!(
                s.labels(),
                xmt_bsp_repro::graph::validate::reference_components(&csr)
            );
            prop_assert_eq!(s.triangles(), graphct::count_triangles(&csr));
        }
    }

    #[test]
    fn dyngraph_csr_roundtrip(edges in proptest::collection::vec((0u64..32, 0u64..32), 0..150)) {
        let mut g = DynGraph::new(32);
        for &(u, v) in &edges {
            g.insert_edge(u, v);
        }
        let back = DynGraph::from_csr(&g.to_csr());
        prop_assert_eq!(back, g);
    }
}
