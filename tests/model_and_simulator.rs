//! Agreement between the analytic model, the pinned constants, and the
//! discrete-event simulator — the chain of custody for every figure.

use xmt_bsp_repro::model::{ModelParams, PhaseCounts};
use xmt_bsp_repro::sim::{kernels, MachineConfig};

/// The harness uses pinned constants so experiments do not re-run
/// calibration; this test is the pin — if the simulator's mechanics
/// change, it fails until the defaults are re-derived.
#[test]
fn pinned_defaults_match_live_calibration() {
    let live = ModelParams::from_calibration(&MachineConfig::default());
    let pinned = ModelParams::default();
    let close = |a: f64, b: f64, tol: f64, what: &str| {
        assert!(
            (a - b).abs() <= tol,
            "{what}: pinned {b} vs calibrated {a} (tol {tol})"
        );
    };
    close(live.mem_period, pinned.mem_period, 2.0, "mem_period");
    close(
        live.hotspot_interval,
        pinned.hotspot_interval,
        1.0,
        "hotspot_interval",
    );
    close(
        live.barrier_base,
        pinned.barrier_base,
        100.0,
        "barrier_base",
    );
    close(
        live.barrier_per_proc,
        pinned.barrier_per_proc,
        10.0,
        "barrier_per_proc",
    );
    close(live.alu_ipc, pinned.alu_ipc, 0.05, "alu_ipc");
}

/// Model predictions for the canonical self-scheduled loop must track
/// the simulator within a modest tolerance across processor counts and
/// workload shapes.
#[test]
fn model_tracks_simulator_on_parallel_loops() {
    let base = MachineConfig {
        streams_per_proc: 16,
        ..MachineConfig::default()
    };
    let consts = xmt_bsp_repro::sim::calibrate(&base);
    for procs in [1usize, 2, 4, 8] {
        let cfg = MachineConfig {
            processors: procs,
            ..base
        };
        let model = ModelParams {
            streams_per_proc: cfg.streams_per_proc,
            clock_hz: cfg.clock_hz,
            mem_period: consts.mem_period,
            hotspot_interval: consts.hotspot_interval,
            barrier_base: consts.barrier_base,
            barrier_per_proc: consts.barrier_per_proc,
            alu_ipc: consts.alu_ipc,
        };
        for (items, alu, loads) in [(4000usize, 1u32, 4usize), (4000, 16, 1), (64, 2, 2)] {
            let stats = kernels::parallel_loop(&cfg, items, alu, loads);
            assert!(!stats.hit_cycle_limit);
            let mut c = PhaseCounts::with_items(items as u64);
            c.alu_ops = items as u64 * alu as u64;
            c.reads = (items * loads) as u64;
            let chunk = (items / (cfg.total_streams() * 4)).clamp(1, 256) as u64;
            c.hotspot_ops = (items as u64).div_ceil(chunk) + cfg.total_streams() as u64;
            let predicted = c.predict_cycles(&model, procs);
            let err = (predicted - stats.cycles as f64).abs() / stats.cycles as f64;
            assert!(
                err < 0.35,
                "items={items} alu={alu} loads={loads} P={procs}: sim {} vs model {predicted:.0} ({:.0}% off)",
                stats.cycles,
                err * 100.0
            );
        }
    }
}

/// The simulator must reproduce the three scalability regimes the
/// figures rely on: linear scaling with abundant parallelism, flat
/// scaling with scarce parallelism, and hotspot-bound flatness.
#[test]
fn simulator_reproduces_the_three_regimes() {
    let shape = |p: usize| MachineConfig {
        processors: p,
        streams_per_proc: 16,
        ..MachineConfig::default()
    };

    // Abundant parallelism: near-linear.
    let rich2 = kernels::parallel_loop(&shape(2), 20_000, 2, 2);
    let rich8 = kernels::parallel_loop(&shape(8), 20_000, 2, 2);
    let speedup = rich2.cycles as f64 / rich8.cycles as f64;
    assert!(speedup > 3.0, "rich speedup {speedup}");

    // Scarce parallelism: flat.
    let poor2 = kernels::parallel_loop(&shape(2), 16, 2, 2);
    let poor8 = kernels::parallel_loop(&shape(8), 16, 2, 2);
    let speedup = poor2.cycles as f64 / poor8.cycles as f64;
    assert!(speedup < 1.7, "poor speedup {speedup}");

    // Hotspot-bound: flat and proportional to total ops.
    let hot2 = kernels::hotspot_fetch_add(&shape(2), 32, 50, 1);
    let hot8 = kernels::hotspot_fetch_add(&shape(8), 32, 50, 1);
    let ratio = hot2.cycles as f64 / hot8.cycles as f64;
    assert!((0.6..1.7).contains(&ratio), "hotspot ratio {ratio}");
}

/// Predictions must be deterministic and monotone in processor count for
/// barrier-free phases (the basis for reading the scaling figures).
#[test]
fn predictions_are_deterministic_and_monotone() {
    let model = ModelParams::default();
    let mut c = PhaseCounts::with_items(1 << 20);
    c.reads = 1 << 22;
    c.alu_ops = 1 << 21;
    let mut prev = f64::INFINITY;
    for p in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let t = c.predict_cycles(&model, p);
        assert_eq!(t, c.predict_cycles(&model, p), "deterministic");
        assert!(t <= prev, "monotone at P={p}");
        prev = t;
    }
}
