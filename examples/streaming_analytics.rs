//! Streaming graph analytics, STINGER-style: ingest an RMAT edge stream
//! in batches while maintaining triangle counts and connected components
//! incrementally — the workload of the paper's streaming references
//! ([12] clustering coefficients, [13] component tracking), with churn
//! (deletions) in the second half of the stream.
//!
//! ```text
//! cargo run --release --example streaming_analytics
//! ```

use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};
use xmt_bsp_repro::stinger::{StreamingClustering, StreamingComponents};

fn main() {
    let params = RmatParams {
        edge_factor: 8,
        ..RmatParams::graph500(11)
    };
    let stream = rmat_edges(&params, 21);
    let n = stream.num_vertices;
    println!(
        "edge stream: {} updates over {} vertices (RMAT scale {})",
        stream.num_edges(),
        n,
        params.scale
    );

    let mut clustering = StreamingClustering::new(n);
    let mut components = StreamingComponents::new(n);

    let batch_size = stream.num_edges() / 8;
    let mut inserted = Vec::new();
    for (b, chunk) in stream.edges.chunks(batch_size).enumerate() {
        // Ingest the batch.
        let mut new_edges = 0u64;
        let mut new_triangles = 0u64;
        for &(u, v) in chunk {
            if let Some(d) = clustering.insert_edge(u, v) {
                components.insert_edge(u, v);
                inserted.push((u, v));
                new_edges += 1;
                new_triangles += d;
            }
        }
        // Churn: in later batches, also delete a slice of old edges.
        let mut deleted = 0u64;
        if b >= 4 {
            for _ in 0..(new_edges / 4) {
                if let Some((u, v)) = inserted.pop() {
                    if clustering.remove_edge(u, v).is_some() {
                        components.remove_edge(u, v);
                        deleted += 1;
                    }
                }
            }
        }
        println!(
            "batch {b}: +{new_edges} edges (-{deleted}), +{new_triangles} triangles | \
now {} edges, {} triangles, {} components, mean cc {:.4}",
            clustering.graph().num_edges(),
            clustering.triangles(),
            components.count(),
            clustering.mean_coefficient(),
        );
    }

    // Cross-check the incremental state against a from-scratch recount
    // and the static toolkit.
    let csr = clustering.graph().to_csr();
    let static_triangles = graphct::count_triangles(&csr);
    assert_eq!(clustering.triangles(), static_triangles);
    let static_labels = graphct::connected_components(&csr);
    assert_eq!(components.labels(), static_labels);
    println!(
        "\nfinal state cross-checked against the static toolkit: {} triangles, {} components ✓",
        static_triangles,
        components.count()
    );
}
