//! A GraphCT-style analysis workflow on a synthetic social network —
//! the "massive social network analysis" use case the paper's toolkit
//! targets (§II lists clustering coefficients, connected components,
//! betweenness centrality, k-core and subgraph extraction as the
//! workflow building blocks).
//!
//! ```text
//! cargo run --release --example social_network_analysis
//! ```

use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};
use xmt_bsp_repro::graph::ops::degree::{degree_histogram, DegreeStats};
use xmt_bsp_repro::graph::ops::subgraph::extract_subgraph;
use xmt_bsp_repro::graphct;

fn main() {
    // A scale-free "social network": hubs, triangles, one big community.
    let g = build_undirected(&rmat_edges(&RmatParams::graph500(13), 7));
    println!(
        "network: {} people, {} friendships",
        g.num_vertices(),
        g.num_edges()
    );

    // --- Degree structure ---------------------------------------------
    let stats = DegreeStats::of(&g);
    println!(
        "degrees: mean {:.1}, max {} (skew {:.0}x), {} isolated",
        stats.mean,
        stats.max,
        stats.skew(),
        stats.isolated
    );
    let hist = degree_histogram(&g);
    print!("log2-degree histogram:");
    for (bucket, count) in hist.iter().enumerate() {
        if *count > 0 {
            print!(" [2^{bucket}]={count}");
        }
    }
    println!();

    // --- Connectivity ---------------------------------------------------
    let labels = graphct::connected_components(&g);
    let mut sizes = std::collections::HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_insert(0u64) += 1;
    }
    let biggest = sizes.values().max().copied().unwrap_or(0);
    println!(
        "components: {} total; giant component holds {:.1}% of the network",
        sizes.len(),
        100.0 * biggest as f64 / g.num_vertices() as f64
    );

    // --- Cohesion: triangles & clustering -------------------------------
    let (cc, triangles) = graphct::clustering_coefficients(&g);
    let mean_cc = cc.iter().sum::<f64>() / cc.len() as f64;
    println!("cohesion: {triangles} triangles, mean clustering coefficient {mean_cc:.4}");

    // --- k-core: the engaged core of the network -------------------------
    let core = graphct::kcore_decomposition(&g);
    let kmax = core.iter().max().copied().unwrap_or(0);
    let core_members: Vec<u64> = core
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= kmax)
        .map(|(v, _)| v as u64)
        .collect();
    println!(
        "k-core: degeneracy {} ({} members in the innermost core)",
        kmax,
        core_members.len()
    );

    // --- Influencers: sampled betweenness centrality ---------------------
    let bc = graphct::betweenness_centrality(&g, Some(64));
    let mut ranked: Vec<(u64, f64)> = bc.iter().enumerate().map(|(v, &b)| (v as u64, b)).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 brokers (sampled betweenness):");
    for (v, b) in ranked.iter().take(5) {
        println!("  person {v:>6}: score {b:>12.0}, degree {}", g.degree(*v));
    }

    // --- Zoom in: extract and re-analyze the innermost core --------------
    let (core_graph, _ids) = extract_subgraph(&g, &core_members);
    let (core_cc, core_tris) = graphct::clustering_coefficients(&core_graph);
    let core_mean = if core_cc.is_empty() {
        0.0
    } else {
        core_cc.iter().sum::<f64>() / core_cc.len() as f64
    };
    println!(
        "innermost core subgraph: {} vertices, {} edges, {} triangles, mean cc {:.4} ({}x denser than the full network)",
        core_graph.num_vertices(),
        core_graph.num_edges(),
        core_tris,
        core_mean,
        (core_mean / mean_cc.max(1e-12)) as u64
    );

    // --- The same pipeline as a GraphCT workflow ------------------------
    // (one read-only graph served to a chain of kernels, paper §II).
    let hub = (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap();
    let mut wf = graphct::Workflow::new(&g);
    wf.degrees()
        .components()
        .bfs(hub)
        .clustering()
        .kcore()
        .betweenness(Some(32));
    println!();
    print!("{}", wf.report());
}
