//! Quickstart: build a scale-free graph, run connected components in
//! both programming models, and predict Cray XMT execution times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xmt_bsp_repro::bsp::algorithms::components::bsp_connected_components;
use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};
use xmt_bsp_repro::graphct;
use xmt_bsp_repro::model::{predict_total_seconds, ModelParams, Recorder};

fn main() {
    // 1. Generate the paper's workload (small): an undirected RMAT graph.
    let params = RmatParams::graph500(14); // 2^14 vertices, ~16 edges each
    let edges = rmat_edges(&params, 1);
    let g = build_undirected(&edges);
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // 2. Shared-memory connected components (the GraphCT baseline).
    let mut ct_rec = Recorder::new();
    let labels = graphct::connected_components_instrumented(&g, &mut ct_rec);
    let components = labels
        .iter()
        .enumerate()
        .filter(|&(v, &l)| v as u64 == l)
        .count();
    println!(
        "shared memory: {} components in {} iterations",
        components,
        ct_rec.steps("iteration")
    );

    // 3. The same algorithm as a BSP vertex program (Pregel-style).
    let mut bsp_rec = Recorder::new();
    let bsp = bsp_connected_components(&g, Some(&mut bsp_rec));
    assert_eq!(bsp.states, labels, "both models must agree");
    println!(
        "BSP:           {} components in {} supersteps",
        components, bsp.supersteps
    );

    // 4. Map the recorded operation counts onto the simulated Cray XMT.
    let model = ModelParams::default();
    for procs in [8usize, 32, 128] {
        let t_ct = predict_total_seconds(&ct_rec, &model, procs);
        let t_bsp = predict_total_seconds(&bsp_rec, &model, procs);
        println!(
            "predicted XMT time at {procs:>3} processors: GraphCT {:>8.3} ms | BSP {:>8.3} ms ({:.1}x)",
            t_ct * 1e3,
            t_bsp * 1e3,
            t_bsp / t_ct
        );
    }
}
