//! Superstep checkpointing, Pregel-style (§3.3 of the Pregel paper:
//! "fault tolerance is achieved through checkpointing" at superstep
//! boundaries): run connected components in bounded slices, "crash"
//! between slices, and resume from the checkpoint — the final answer is
//! bit-identical to an uninterrupted run.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use xmt_bsp_repro::bsp::algorithms::components::CcProgram;
use xmt_bsp_repro::bsp::runtime::{resume_bsp, run_bsp, run_bsp_slice, BspConfig};
use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};

fn main() {
    let g = build_undirected(&rmat_edges(&RmatParams::graph500(13), 11));
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Reference: one uninterrupted run.
    let whole = run_bsp(&g, &CcProgram, BspConfig::default(), None);
    println!(
        "uninterrupted run: {} supersteps, {} components",
        whole.supersteps,
        whole
            .states
            .iter()
            .enumerate()
            .filter(|&(v, &l)| v as u64 == l)
            .count()
    );

    // The same computation, 2 supersteps at a time, checkpointing at
    // every boundary (a real deployment would serialize the ResumePoint
    // to stable storage here).
    let mut limit = 2u64;
    let mut slice = run_bsp_slice(
        &g,
        &CcProgram,
        BspConfig {
            max_supersteps: limit,
            ..Default::default()
        },
        None,
        None,
    );
    let mut crashes = 0;
    while let Some(ckpt) = slice.resume.take() {
        crashes += 1;
        println!(
            "  crash #{crashes} after superstep {}: checkpoint holds {} pending messages, {} halted vertices",
            ckpt.superstep,
            ckpt.pending.len(),
            ckpt.halted.iter().filter(|&&h| h).count()
        );
        limit += 2;
        slice = resume_bsp(
            &g,
            &CcProgram,
            BspConfig {
                max_supersteps: limit,
                ..Default::default()
            },
            None,
            slice.result.states,
            ckpt,
        )
        .expect("valid checkpoint");
    }

    assert_eq!(slice.result.states, whole.states, "recovery must be exact");
    assert_eq!(slice.result.supersteps, whole.supersteps);
    println!(
        "recovered through {crashes} crashes; final labeling identical to the uninterrupted run ✓"
    );
}
