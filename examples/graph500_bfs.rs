//! A Graph500-style BFS benchmark (the paper's §IV motivates BFS with
//! the Graph500 [21]): generate an RMAT graph, run BFS from a set of
//! pseudo-random sources in *both* programming models, validate every
//! tree, and report traversed-edges-per-second — host wall-clock and
//! simulated 128-processor XMT.
//!
//! ```text
//! cargo run --release --example graph500_bfs
//! ```

use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use xmt_bsp_repro::bsp::algorithms::bfs::bsp_bfs;
use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};
use xmt_bsp_repro::graph::validate::validate_bfs;
use xmt_bsp_repro::graphct;
use xmt_bsp_repro::model::{predict_total_seconds, ModelParams, Recorder};

const SCALE: u32 = 13;
const NUM_SOURCES: usize = 8;

fn main() {
    let g = build_undirected(&rmat_edges(&RmatParams::graph500(SCALE), 2));
    println!(
        "graph500: scale {SCALE} => {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Pseudo-random sources with nonzero degree (Graph500 rule).
    let mut rng = ChaCha8Rng::seed_from_u64(500);
    let mut sources = Vec::new();
    while sources.len() < NUM_SOURCES {
        let v = rng.gen_range(0..g.num_vertices());
        if g.degree(v) > 0 && !sources.contains(&v) {
            sources.push(v);
        }
    }

    let model = ModelParams::default();
    let mut host_teps = (0.0f64, 0.0f64);
    let mut sim_teps = (0.0f64, 0.0f64);

    for (i, &s) in sources.iter().enumerate() {
        // Shared-memory BFS.
        let mut ct_rec = Recorder::new();
        let t0 = Instant::now();
        let ct = graphct::bfs_instrumented(&g, s, &mut ct_rec);
        let ct_host = t0.elapsed().as_secs_f64();
        validate_bfs(&g, s, &ct.dist, &ct.parent).expect("invalid shared-memory BFS tree");

        // BSP BFS.
        let mut bsp_rec = Recorder::new();
        let t0 = Instant::now();
        let out = bsp_bfs(&g, s, Some(&mut bsp_rec));
        let bsp_host = t0.elapsed().as_secs_f64();
        validate_bfs(&g, s, &out.dist(), &out.parent()).expect("invalid BSP BFS tree");
        assert_eq!(out.dist(), ct.dist, "models disagree from source {s}");

        // Traversed edges: arcs incident on reached vertices / 2.
        let traversed: u64 = (0..g.num_vertices())
            .filter(|&v| ct.dist[v as usize] != u64::MAX)
            .map(|v| g.degree(v))
            .sum::<u64>()
            / 2;

        let ct_sim = predict_total_seconds(&ct_rec, &model, 128);
        let bsp_sim = predict_total_seconds(&bsp_rec, &model, 128);
        println!(
            "source {i}: vertex {s:>6} reached {:>6} levels={:<2} | host GTEPS ct {:.3} bsp {:.3} | sim-XMT GTEPS ct {:.3} bsp {:.3}",
            ct.dist.iter().filter(|&&d| d != u64::MAX).count(),
            ct.frontier_sizes.len(),
            traversed as f64 / ct_host / 1e9,
            traversed as f64 / bsp_host / 1e9,
            traversed as f64 / ct_sim / 1e9,
            traversed as f64 / bsp_sim / 1e9,
        );
        host_teps.0 += traversed as f64 / ct_host;
        host_teps.1 += traversed as f64 / bsp_host;
        sim_teps.0 += traversed as f64 / ct_sim;
        sim_teps.1 += traversed as f64 / bsp_sim;
    }

    let n = NUM_SOURCES as f64;
    println!();
    println!(
        "mean GTEPS  (host):          GraphCT {:.3} | BSP {:.3}",
        host_teps.0 / n / 1e9,
        host_teps.1 / n / 1e9
    );
    println!(
        "mean GTEPS  (simulated XMT): GraphCT {:.3} | BSP {:.3}",
        sim_teps.0 / n / 1e9,
        sim_teps.1 / n / 1e9
    );
    println!("all {NUM_SOURCES} BFS trees validated (Graph500 rules)");
}
