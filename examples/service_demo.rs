//! Demo: the graph-analytics service end to end on loopback TCP.
//!
//! Starts a server, registers two graphs, runs all three kernels,
//! deliberately times a job out against its deadline, resumes it from
//! the stored checkpoint, and prints the service's stats.
//!
//! ```sh
//! cargo run --release --example service_demo
//! ```

use serde::Content;
use xmt_bsp::{ActiveSetStrategy, BspConfig};
use xmt_service::client::{field, field_str, field_u64};
use xmt_service::{Client, Server, ServiceConfig};

fn main() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            memory_budget_bytes: 64 << 20,
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    println!("server listening on {addr}");
    let handle = server.spawn();

    let mut client = Client::connect(&addr).expect("connect");
    let mut send = |line: &str| -> Content {
        let response = client.request_line(line).expect("request");
        let json = serde_json::to_string(&response).expect("serializable");
        let shown = if json.len() > 120 {
            format!("{}...", &json[..120])
        } else {
            json
        };
        println!("→ {line}\n← {shown}");
        response
    };

    // A scale-10 RMAT graph and a long path, both built server-side.
    send(
        r#"{"op":"register_graph","name":"rmat10","kind":"rmat","scale":10,"edge_factor":16,"seed":1}"#,
    );
    send(r#"{"op":"register_graph","name":"long","kind":"path","n":16000}"#);
    send(r#"{"op":"list_graphs"}"#);

    // All three kernels on the RMAT graph.
    for line in [
        r#"{"op":"submit","algorithm":"cc","graph":"rmat10"}"#,
        r#"{"op":"submit","algorithm":"bfs","graph":"rmat10","source":0}"#,
        r#"{"op":"submit","algorithm":"pagerank","graph":"rmat10"}"#,
    ] {
        let r = send(line);
        let id = field_u64(&r, "job_id").expect("job id");
        let r = send(&format!(
            r#"{{"op":"result","job_id":{id},"wait_ms":60000}}"#
        ));
        assert_eq!(field_str(&r, "status"), Some("ok"));
    }

    // CC on the 16k path takes ~16k supersteps; a 10 ms deadline cuts it
    // at a superstep boundary into a resumable checkpoint.
    let cfg = serde_json::to_string(&BspConfig {
        active_set: ActiveSetStrategy::Worklist,
        max_supersteps: 1_000_000,
        ..BspConfig::default()
    })
    .expect("config");
    let r = send(&format!(
        r#"{{"op":"submit","algorithm":"cc","graph":"long","config":{cfg},"deadline_ms":10}}"#
    ));
    let id = field_u64(&r, "job_id").expect("job id");
    send(&format!(
        r#"{{"op":"result","job_id":{id},"wait_ms":60000}}"#
    ));
    let r = send(&format!(r#"{{"op":"status","job_id":{id}}}"#));
    let job = field(&r, "job").expect("job");
    println!(
        "  deadline cut the run at superstep {} (state {})",
        field_u64(job, "supersteps").unwrap_or(0),
        field_str(job, "state").unwrap_or("?"),
    );

    // Resume from the checkpoint and finish.
    let r = send(&format!(r#"{{"op":"resume","job_id":{id}}}"#));
    let resumed = field_u64(&r, "job_id").expect("resumed id");
    let r = send(&format!(
        r#"{{"op":"result","job_id":{resumed},"wait_ms":60000}}"#
    ));
    assert_eq!(field_str(&r, "status"), Some("ok"));
    println!("  resumed job completed");

    send(r#"{"op":"stats"}"#);
    send(r#"{"op":"shutdown"}"#);
    handle.join().expect("server thread");
    println!("server shut down cleanly");
}
