//! Tour of the Threadstorm machine simulator: latency tolerance by
//! multithreading, hotspot serialization (the §VII message-queue
//! pathology), and the scaling of a self-scheduled parallel loop.
//!
//! ```text
//! cargo run --release --example xmt_machine_demo
//! ```

use xmt_bsp_repro::sim::{kernels, MachineConfig};

fn main() {
    let cfg = MachineConfig {
        processors: 4,
        streams_per_proc: 128,
        ..MachineConfig::default()
    };
    println!(
        "machine: {} processors x {} streams, {} MHz, memory latency {} cycles\n",
        cfg.processors,
        cfg.streams_per_proc,
        cfg.clock_hz / 1e6,
        cfg.mem_latency
    );

    // 1. Latency tolerance: one processor's issue rate vs active streams.
    println!("1. hardware multithreading hides memory latency");
    println!("   (one processor, independent loads; IPC -> 1.0 as streams -> latency)");
    for streams in [1usize, 4, 16, 64, 128] {
        let stats = kernels::stream_saturation(&cfg, streams, 300);
        let bar = "#".repeat((stats.ipc() * 50.0) as usize);
        println!("   {streams:>4} streams: IPC {:.3} {bar}", stats.ipc());
    }

    // 2. Dependent loads cannot be hidden: the pointer chase.
    let chase = kernels::pointer_chase(&cfg, 500);
    println!(
        "\n2. a dependent pointer chase runs at {:.1} cycles per load (the full latency)",
        chase.cycles as f64 / 500.0
    );

    // 3. Hotspotting: everyone fetch-adds the same word.
    println!("\n3. hotspot serialization (the single-fetch-and-add message queue, paper §VII)");
    println!("   32 streams x 50 fetch-adds, striped over w words:");
    for width in [1usize, 2, 8, 32] {
        let stats = kernels::hotspot_fetch_add(&cfg, 32, 50, width);
        println!(
            "   width {width:>2}: {:>7} cycles  ({:.2} cycles/op at the hottest word)",
            stats.cycles,
            stats.cycles as f64 / (32.0 * 50.0 / width as f64)
        );
    }

    // 4. The canonical parallel loop: scaling with processors.
    println!("\n4. self-scheduled parallel loop (20k iterations, 2 ALU + 2 loads each)");
    let mut t1 = 0u64;
    for procs in [1usize, 2, 4, 8] {
        let c = MachineConfig {
            processors: procs,
            streams_per_proc: 64,
            ..cfg
        };
        let stats = kernels::parallel_loop(&c, 20_000, 2, 2);
        if procs == 1 {
            t1 = stats.cycles;
        }
        println!(
            "   {procs} proc: {:>8} cycles  speedup {:.2}x  ({:.1} us at 500 MHz)",
            stats.cycles,
            t1 as f64 / stats.cycles as f64,
            c.cycles_to_seconds(stats.cycles) * 1e6
        );
    }

    // 5. Full/empty bits: a hardware producer/consumer handoff.
    println!("\n5. full/empty bits synchronize without locks");
    use xmt_bsp_repro::sim::op::FnTasklet;
    use xmt_bsp_repro::sim::{Machine, Op};
    let mut m = Machine::new(MachineConfig::tiny());
    m.memory_mut()
        .set_tag(64, xmt_bsp_repro::sim::memory::Tag::Empty);
    // Producer writes 3 values with writeef; consumer drains with readfe.
    let mut pi = 0;
    m.spawn(Box::new(FnTasklet(move |_| {
        if pi < 3 {
            pi += 1;
            Some(Op::WriteEF(64, pi * 100))
        } else {
            None
        }
    })));
    let mut got = 0;
    m.spawn(Box::new(FnTasklet(move |last| {
        if let Some(v) = last {
            if v >= 100 {
                // Store each received value to a results slot.
                got += 1;
                return Some(Op::Store(128 + got * 8, v));
            }
        }
        if got < 3 {
            Some(Op::ReadFE(64))
        } else {
            None
        }
    })));
    let stats = m.run(1_000_000);
    println!(
        "   handoff of 3 values took {} cycles with {} hardware retries; received: {} {} {}",
        stats.cycles,
        stats.tag_retries,
        m.memory().peek(136),
        m.memory().peek(144),
        m.memory().peek(152),
    );
}
