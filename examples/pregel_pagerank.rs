//! Writing your own vertex program: PageRank with a sum combiner and a
//! convergence aggregator, plus a custom "degree histogram by message
//! passing" program showing the raw `VertexProgram` API.
//!
//! ```text
//! cargo run --release --example pregel_pagerank
//! ```

use xmt_bsp_repro::bsp::algorithms::pagerank::{bsp_pagerank, PagerankProgram};
use xmt_bsp_repro::bsp::runtime::{run_bsp, BspConfig};
use xmt_bsp_repro::bsp::{Context, VertexProgram};
use xmt_bsp_repro::graph::builder::build_undirected;
use xmt_bsp_repro::graph::gen::rmat::{rmat_edges, RmatParams};

fn main() {
    let g = build_undirected(&rmat_edges(&RmatParams::graph500(12), 3));
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // ---- The built-in PageRank program ---------------------------------
    let r = bsp_pagerank(&g, PagerankProgram::default(), 200, None);
    println!(
        "pagerank converged in {} supersteps (L1 change per superstep below):",
        r.supersteps
    );
    for (s, &(_, l1)) in r.aggregates.iter().enumerate().take(12) {
        if s > 0 {
            println!("  superstep {s:>2}: L1 = {l1:.3e}");
        }
    }
    let mut top: Vec<(usize, f64)> = r.states.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 ranked vertices:");
    for (v, score) in top.iter().take(5) {
        println!(
            "  vertex {v:>6}: rank {score:.6}, degree {}",
            g.degree(*v as u64)
        );
    }

    // ---- A custom program: two-hop neighborhood size --------------------
    // Superstep 0: send your id to all neighbors. Superstep 1: forward
    // the received ids to all neighbors. Superstep 2: count distinct
    // senders — the size of your two-hop neighborhood.
    struct TwoHop;

    impl VertexProgram for TwoHop {
        type State = u64;
        type Message = u64;

        fn init(&self, _v: u64) -> u64 {
            0
        }

        fn compute(&self, ctx: &mut Context<'_, u64>, state: &mut u64, msgs: &[u64]) {
            match ctx.superstep() {
                0 => {
                    let me = ctx.vertex();
                    ctx.send_to_neighbors(me);
                }
                1 => {
                    for &m in msgs {
                        ctx.send_to_neighbors(m);
                    }
                }
                _ => {
                    let me = ctx.vertex();
                    let mut seen: Vec<u64> = msgs.iter().copied().filter(|&m| m != me).collect();
                    seen.sort_unstable();
                    seen.dedup();
                    *state = seen.len() as u64;
                }
            }
            ctx.vote_to_halt();
        }
    }

    let two_hop = run_bsp(&g, &TwoHop, BspConfig::default(), None);
    let best = two_hop
        .states
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .unwrap();
    println!(
        "two-hop reach: vertex {} touches {} vertices within 2 hops ({:.1}% of the graph) in {} supersteps",
        best.0,
        best.1,
        100.0 * *best.1 as f64 / g.num_vertices() as f64,
        two_hop.supersteps
    );
}
